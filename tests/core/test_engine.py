"""Offload engine semantics: mapping, transfers, the stack-overflow path."""

import numpy as np
import pytest

from repro.core.clock import SimClock, TimeBucket
from repro.core.device import Device
from repro.core.directives import (
    Map,
    MapType,
    TargetEnterData,
    TargetExitData,
    TargetTeamsDistributeParallelDo,
    map_alloc,
    map_from,
    map_to,
)
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV, OffloadEnv
from repro.core.kernel import Kernel, KernelResources
from repro.errors import CudaStackOverflow, MappingError


def _engine(env=None):
    return OffloadEngine(device=Device(), env=env or OffloadEnv(), clock=SimClock())


def _kernel(frame=0, regs=74, extents=(20, 10, 30), body=None):
    return Kernel(
        name="k",
        loop_extents=extents,
        resources=KernelResources(
            registers_per_thread=regs,
            automatic_array_bytes=frame,
            working_set_per_thread=1000.0,
            flops=1e6,
            traffic=(),
            active_iterations=100,
        ),
        body=body,
    )


class TestDataEnvironment:
    def test_enter_data_alloc_and_to(self):
        eng = _engine()
        host = np.ones((4, 5))
        out = eng.enter_data(
            TargetEnterData(maps=(map_alloc("buf"), map_to("inp"))),
            shapes={"buf": (8, 8)},
            arrays={"inp": host},
        )
        assert out["buf"].shape == (8, 8)
        np.testing.assert_allclose(out["inp"].data, 1.0)
        assert eng.clock.bucket(TimeBucket.H2D) > 0

    def test_enter_data_missing_shape_rejected(self):
        eng = _engine()
        with pytest.raises(MappingError):
            eng.enter_data(TargetEnterData(maps=(map_alloc("buf"),)))

    def test_exit_data_releases_and_downloads(self):
        eng = _engine()
        eng.enter_data(
            TargetEnterData(maps=(map_alloc("buf"),)), shapes={"buf": (4,)}
        )
        eng.exit_data(TargetExitData(maps=(Map(MapType.FROM, ("buf",)),)))
        assert "buf" not in eng.ctx.arrays
        assert eng.clock.bucket(TimeBucket.D2H) > 0

    def test_update_roundtrip_casts_via_device_precision(self):
        eng = _engine()
        eng.enter_data(
            TargetEnterData(maps=(map_alloc("x"),)), shapes={"x": (3,)}
        )
        eng.update_to("x", np.array([1.0, 2.0, 3.000000001]))
        back = eng.update_from("x")
        assert back.dtype == np.float64
        # float32 rounding happened on device.
        assert back[2] == np.float32(3.000000001)

    def test_update_shape_mismatch_rejected(self):
        eng = _engine()
        eng.enter_data(
            TargetEnterData(maps=(map_alloc("x"),)), shapes={"x": (3,)}
        )
        with pytest.raises(MappingError):
            eng.update_to("x", np.zeros(5))


class TestLaunch:
    def test_launch_runs_body_and_charges_time(self):
        ran = []
        eng = _engine()
        kernel = _kernel(body=lambda: ran.append(True))
        record = eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=2))
        assert ran == [True]
        assert record.time > 0
        assert eng.clock.bucket(TimeBucket.GPU_KERNEL) == pytest.approx(record.time)

    def test_transient_to_arrays_freed_after_region(self):
        eng = _engine()
        directive = TargetTeamsDistributeParallelDo(
            collapse=2, maps=(map_to("inp"),)
        )
        eng.launch(_kernel(), directive, to_arrays={"inp": np.zeros((5, 5))})
        assert "inp" not in eng.ctx.arrays

    def test_unmapped_upload_rejected(self):
        eng = _engine()
        with pytest.raises(MappingError, match="map\\(to:\\)"):
            eng.launch(
                _kernel(),
                TargetTeamsDistributeParallelDo(collapse=2),
                to_arrays={"x": np.zeros(3)},
            )

    def test_download_without_from_clause_rejected(self):
        eng = _engine()
        with pytest.raises(MappingError, match="map\\(from:\\)"):
            eng.launch(
                _kernel(),
                TargetTeamsDistributeParallelDo(collapse=2),
                from_names=("y",),
            )

    def test_records_accumulate(self):
        eng = _engine()
        for _ in range(3):
            eng.launch(_kernel(), TargetTeamsDistributeParallelDo(collapse=2))
        assert len(eng.records) == 3
        assert eng.kernel_time == pytest.approx(sum(r.time for r in eng.records))


class TestStackOverflowPath:
    """The paper's Sec. VI-B failure and its two remedies."""

    FRAME = 4752  # coal_bott_new's automatic arrays

    def test_collapse2_with_automatic_arrays_launches(self):
        eng = _engine()  # default 1 KiB stack, 32 MiB heap
        kernel = _kernel(frame=self.FRAME, regs=234, extents=(75, 50, 107))
        eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=2))

    def test_collapse3_with_automatic_arrays_overflows(self):
        eng = _engine()
        kernel = _kernel(frame=self.FRAME, regs=234, extents=(75, 50, 107))
        with pytest.raises(CudaStackOverflow, match="NV_ACC_CUDA_STACKSIZE"):
            eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))

    def test_raising_stacksize_fixes_the_launch(self):
        eng = _engine(env=PAPER_ENV)  # 65536-byte stack
        kernel = _kernel(frame=self.FRAME, regs=234, extents=(75, 50, 107))
        eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))

    def test_removing_automatic_arrays_fixes_the_launch(self):
        eng = _engine()  # default env
        kernel = _kernel(frame=0, regs=74, extents=(75, 50, 107))
        eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))
