"""Simulated clock: buckets, regions, merging."""

import pytest

from repro.core.clock import SimClock, TimeBucket


def test_advance_accumulates():
    c = SimClock()
    c.advance(TimeBucket.CPU_COMPUTE, 1.0)
    c.advance(TimeBucket.CPU_COMPUTE, 2.0)
    c.advance(TimeBucket.MPI, 0.5)
    assert c.bucket(TimeBucket.CPU_COMPUTE) == 3.0
    assert c.total == 3.5


def test_negative_charge_rejected():
    c = SimClock()
    with pytest.raises(ValueError):
        c.advance(TimeBucket.MPI, -1.0)


def test_regions_nest_and_attribute():
    c = SimClock()
    with c.region("solve_em"):
        c.advance(TimeBucket.CPU_COMPUTE, 1.0)
        with c.region("fast_sbm"):
            c.advance(TimeBucket.CPU_COMPUTE, 2.0)
            with c.region("coal_bott_new"):
                c.advance(TimeBucket.GPU_KERNEL, 4.0)
    assert c.region_total("solve_em") == 7.0
    assert c.region_total("fast_sbm") == 6.0
    assert c.region_total("coal_bott_new") == 4.0


def test_region_total_matches_inner_name_anywhere():
    c = SimClock()
    with c.region("a"):
        with c.region("b"):
            c.advance(TimeBucket.IO, 1.0)
    assert c.region_total("b") == 1.0


def test_charges_outside_regions_not_attributed():
    c = SimClock()
    c.advance(TimeBucket.CPU_COMPUTE, 5.0)
    assert c.region_total("anything") == 0.0
    assert c.total == 5.0


def test_merge_sums_buckets_and_regions():
    a, b = SimClock(), SimClock()
    with a.region("x"):
        a.advance(TimeBucket.MPI, 1.0)
    with b.region("x"):
        b.advance(TimeBucket.MPI, 2.0)
    a.merge(b)
    assert a.region_total("x") == 3.0
    assert a.bucket(TimeBucket.MPI) == 3.0


def test_snapshot_has_every_bucket():
    c = SimClock()
    snap = c.snapshot()
    assert set(snap) == {b.value for b in TimeBucket}
    assert all(v == 0.0 for v in snap.values())


def test_reset():
    c = SimClock()
    c.advance(TimeBucket.IO, 1.0)
    c.reset()
    assert c.total == 0.0
