"""Property-based invariants of the engine and cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costmodel import CpuCostModel, GpuCostModel
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel, KernelResources
from repro.core.launch import plan_launch
from repro.hardware.memory import AccessPattern, TrafficComponent
from repro.hardware.specs import A100_40GB, EPYC_MILAN

kernel_params = st.fixed_dictionaries(
    {
        "regs": st.integers(32, 255),
        "nj": st.integers(1, 100),
        "nk": st.integers(1, 60),
        "ni": st.integers(1, 120),
        "flops": st.floats(1e5, 1e11),
        "bytes_": st.floats(1e4, 1e10),
        "collapse": st.integers(1, 3),
    }
)


def _kernel(p):
    total = p["nj"] * p["nk"] * p["ni"]
    return Kernel(
        name="k",
        loop_extents=(p["nj"], p["nk"], p["ni"]),
        resources=KernelResources(
            registers_per_thread=p["regs"],
            automatic_array_bytes=0,
            working_set_per_thread=1000.0,
            flops=p["flops"],
            traffic=(
                TrafficComponent(
                    name="t",
                    pattern=AccessPattern.GLOBAL_COALESCED,
                    read_bytes=p["bytes_"] * 0.6,
                    write_bytes=p["bytes_"] * 0.4,
                ),
            ),
            active_iterations=total,
        ),
    )


class TestGpuCostProperties:
    @given(p=kernel_params)
    @settings(max_examples=50, deadline=None)
    def test_time_positive_and_floored_by_launch_overhead(self, p):
        model = GpuCostModel(A100_40GB)
        launch = plan_launch(
            _kernel(p),
            TargetTeamsDistributeParallelDo(collapse=p["collapse"]),
            OffloadEnv(),
        )
        timing = model.time(_kernel(p), launch)
        assert timing.total >= A100_40GB.launch_overhead
        assert timing.compute_time >= 0 and timing.memory_time >= 0

    @given(p=kernel_params)
    @settings(max_examples=50, deadline=None)
    def test_more_flops_never_faster(self, p):
        model = GpuCostModel(A100_40GB)
        k1 = _kernel(p)
        p2 = dict(p)
        p2["flops"] = p["flops"] * 4
        k2 = _kernel(p2)
        directive = TargetTeamsDistributeParallelDo(collapse=p["collapse"])
        t1 = model.time(k1, plan_launch(k1, directive, OffloadEnv()))
        t2 = model.time(k2, plan_launch(k2, directive, OffloadEnv()))
        assert t2.total >= t1.total - 1e-12

    @given(p=kernel_params)
    @settings(max_examples=50, deadline=None)
    def test_traffic_fields_consistent(self, p):
        model = GpuCostModel(A100_40GB)
        k = _kernel(p)
        launch = plan_launch(
            k, TargetTeamsDistributeParallelDo(collapse=p["collapse"]), OffloadEnv()
        )
        t = model.time(k, launch).traffic
        assert 0.0 <= t.l1_hit_rate <= 1.0
        assert 0.0 <= t.l2_hit_rate <= 1.0
        assert t.dram_bytes == pytest.approx(
            t.dram_read_bytes + t.dram_write_bytes
        )

    @given(p=kernel_params)
    @settings(max_examples=30, deadline=None)
    def test_deeper_collapse_never_lowers_occupancy(self, p):
        model = GpuCostModel(A100_40GB)
        k = _kernel(p)
        occs = []
        for collapse in (1, 2, 3):
            launch = plan_launch(
                k, TargetTeamsDistributeParallelDo(collapse=collapse), OffloadEnv()
            )
            occs.append(model.time(k, launch).occupancy.achieved)
        assert occs[0] <= occs[1] + 1e-12 <= occs[2] + 2e-12


class TestCpuCostProperties:
    @given(
        flops=st.floats(0, 1e12),
        nbytes=st.floats(0, 1e11),
        iters=st.integers(0, 10**8),
        cores=st.integers(1, 128),
        threads=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_nonnegative_and_monotone_in_work(
        self, flops, nbytes, iters, cores, threads
    ):
        m = CpuCostModel(
            cpu=EPYC_MILAN, active_cores_on_socket=cores, threads=threads
        )
        t = m.time(flops, nbytes, iters)
        assert t >= 0.0
        assert m.time(flops * 2 + 1, nbytes, iters) >= t

    @given(threads=st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_thread_speedup_bounded_by_thread_count(self, threads):
        m = CpuCostModel(cpu=EPYC_MILAN, threads=threads)
        assert 1.0 <= m.thread_speedup() <= threads
