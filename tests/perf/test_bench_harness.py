"""The wall-clock benchmark harness and its regression gate.

These run in tier-1 (they live under ``tests/``) and are additionally
selectable alone with ``pytest -m bench_quick``. They use tiny
workloads — the full benchmark runs through ``repro bench`` /
``scripts/bench_gate.py``.
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys

import pytest

from benchmarks import harness

pytestmark = pytest.mark.bench_quick


def _quick_gate_skip_reason() -> str | None:
    """Why the live wall-clock quick gates can't run meaningfully here.

    The gate subprocess times real kernels against the committed
    baseline; on a single-core host it time-slices against the test
    runner itself, and on a saturated host against everything else —
    either way the measurement is noise, not a regression signal. The
    honest outcome is a skip with this reason, not a threshold widened
    until noise passes.
    """
    ncpu = os.cpu_count() or 1
    if ncpu < 2:
        return (
            "wall-clock quick gate needs a dedicated core "
            f"(os.cpu_count() == {ncpu}; the gate subprocess would "
            "time-slice against the suite)"
        )
    try:
        load1 = os.getloadavg()[0]
    except (OSError, AttributeError):  # pragma: no cover - exotic hosts
        return None
    if load1 >= ncpu - 0.5:
        return (
            f"host is saturated (1-min load {load1:.1f} on {ncpu} "
            "cores); wall-clock gating would measure contention"
        )
    return None


@pytest.fixture(scope="module")
def coal_bench():
    return harness.bench_coal_bott("default", npts=64, reps=2)


class TestHarness:
    def test_coal_bott_bench_payload(self, coal_bench):
        assert coal_bench.name == "coal_bott"
        assert 0 < coal_bench.min_s <= coal_bench.median_s <= coal_bench.max_s
        assert coal_bench.extra["pair_entries"] > 0
        assert coal_bench.extra["mode_supported"] is True

    def test_sparse_and_dense_modes_supported(self):
        sparse = harness.bench_coal_bott("sparse", npts=64, reps=1)
        dense = harness.bench_coal_bott("dense", npts=64, reps=1)
        assert sparse.extra["mode_supported"] and dense.extra["mode_supported"]
        # Same workload, same scalar-code work stats on both engines.
        assert sparse.extra["pair_entries"] == dense.extra["pair_entries"]

    def test_seed_baseline_is_committed(self):
        seed = harness.REPO_ROOT / "BENCH_seed.json"
        assert seed.exists()
        payload = harness.load_payload(seed)
        assert payload["schema"] == harness.SCHEMA
        # Kernels tracked since the seed; tracked kernels added later
        # (e.g. transport_fused) appear only in newer baselines.
        for name in ("coal_bott", "model_step_r1", "model_step_r4"):
            assert name in payload["kernels"], name

    def test_current_baseline_tracks_all_kernels(self):
        baseline = harness.find_baseline()
        assert baseline is not None
        payload = harness.load_payload(baseline)
        for name in harness.TRACKED_KERNELS:
            assert name in payload["kernels"], name

    def test_payload_header_records_host(self):
        # Header only: name a kernel that doesn't exist so no benches
        # run, but the BENCH header is still assembled.
        payload = harness.collect(quick=True, kernels=["__header_only__"])
        assert payload["kernels"] == {}
        assert payload["cpu_count"] == os.cpu_count()
        assert isinstance(payload["hostname"], str) and payload["hostname"]
        assert payload["revision"]

    def test_find_baseline_prefers_non_seed(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "REPO_ROOT", tmp_path)
        (tmp_path / "BENCH_seed.json").write_text("{}")
        assert harness.find_baseline().name == "BENCH_seed.json"
        (tmp_path / "BENCH_abc123.json").write_text("{}")
        assert harness.find_baseline().name == "BENCH_abc123.json"


def _payload_from(bench: harness.KernelBench, name: str) -> dict:
    return {
        "schema": harness.SCHEMA,
        "revision": "test",
        "quick": True,
        "config": {},
        "kernels": {name: bench.to_json()},
    }


class TestGate:
    """Exit-code contract: 0 = ok, 2 = regression (mirrors codee verify)."""

    def test_identical_payloads_pass(self, coal_bench):
        payload = _payload_from(coal_bench, "coal_bott")
        findings = harness.compare_payloads(payload, payload)
        assert findings and not any(f.regressed for f in findings)
        assert harness.gate_exit_code(findings) == 0

    def test_injected_2x_slowdown_fails(self, coal_bench):
        baseline = _payload_from(coal_bench, "coal_bott")
        slowed = copy.deepcopy(baseline)
        slowed["kernels"]["coal_bott"]["median_s"] *= 2.0
        findings = harness.compare_payloads(slowed, baseline)
        assert any(f.regressed for f in findings)
        assert harness.gate_exit_code(findings) == 2
        # ... and a speedup is not a regression.
        assert harness.gate_exit_code(
            harness.compare_payloads(baseline, slowed)
        ) == 0

    def test_slowdown_inside_threshold_passes(self, coal_bench):
        baseline = _payload_from(coal_bench, "coal_bott")
        slowed = copy.deepcopy(baseline)
        slowed["kernels"]["coal_bott"]["median_s"] *= 1.10  # below 15%
        assert harness.gate_exit_code(
            harness.compare_payloads(slowed, baseline)
        ) == 0

    def test_untracked_kernels_are_ignored(self, coal_bench):
        baseline = _payload_from(coal_bench, "coal_bott")
        slowed = copy.deepcopy(baseline)
        slowed["kernels"]["coal_bott_dense"] = copy.deepcopy(
            slowed["kernels"]["coal_bott"]
        )
        slowed["kernels"]["coal_bott_dense"]["median_s"] *= 10.0
        assert harness.gate_exit_code(
            harness.compare_payloads(slowed, baseline)
        ) == 0


class TestGateScript:
    """scripts/bench_gate.py end to end on saved payloads."""

    def _run(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(harness.REPO_ROOT / "scripts" / "bench_gate.py"), *args],
            capture_output=True,
            text=True,
        )

    def test_exit_2_on_injected_slowdown(self, tmp_path, coal_bench):
        baseline = _payload_from(coal_bench, "coal_bott")
        slowed = copy.deepcopy(baseline)
        slowed["kernels"]["coal_bott"]["median_s"] *= 2.0
        base_p = tmp_path / "BENCH_base.json"
        cur_p = tmp_path / "current.json"
        base_p.write_text(json.dumps(baseline))
        cur_p.write_text(json.dumps(slowed))
        proc = self._run("--baseline", str(base_p), "--current", str(cur_p))
        assert proc.returncode == 2, proc.stdout + proc.stderr
        assert "REGRESSION" in proc.stdout

    def test_exit_0_when_clean(self, tmp_path, coal_bench):
        baseline = _payload_from(coal_bench, "coal_bott")
        base_p = tmp_path / "BENCH_base.json"
        cur_p = tmp_path / "current.json"
        base_p.write_text(json.dumps(baseline))
        cur_p.write_text(json.dumps(baseline))
        proc = self._run("--baseline", str(base_p), "--current", str(cur_p))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_exit_1_without_baseline(self, tmp_path):
        proc = self._run(
            "--baseline", str(tmp_path / "missing.json"),
            "--current", str(tmp_path / "missing2.json"),
        )
        assert proc.returncode == 1


class TestTransportBench:
    def test_fused_payload(self):
        b = harness.bench_transport("fused", shape=(6, 5, 4), reps=2)
        assert b.name == "transport_fused"
        assert b.extra["nscalars"] == 234
        assert b.extra["flops"] > 0
        assert b.extra["min_traffic_bytes"] == 2 * b.extra["superblock_bytes"]
        assert 0 < b.min_s <= b.median_s <= b.max_s

    def test_per_field_payload(self):
        b = harness.bench_transport("per_field", shape=(6, 5, 4), reps=2)
        assert b.name == "transport_per_field"
        assert b.extra["mode"] == "per_field"


class TestPhysicsBenches:
    """Payload sanity for the PR-5 tracked kernels (tiny workloads)."""

    def test_sedimentation_payload(self):
        b = harness.bench_sedimentation(shape=(4, 8, 3), reps=1)
        assert b.name == "sedimentation"
        assert b.extra["cell_bins"] > 0
        assert b.extra["flops"] > 0
        assert isinstance(b.extra["compiled"], bool)

    def test_cond_remap_payload(self):
        b = harness.bench_cond_remap(npts=64, reps=1)
        assert b.name == "cond_remap"
        assert b.extra["npts"] == 64
        assert isinstance(b.extra["compiled"], bool)

    def test_coal_apply_payload(self):
        b = harness.bench_coal_apply(npts=64, reps=2)
        assert b.name == "coal_apply_batched"
        assert b.extra["workspace_bytes"] > 0
        # The persistent workspace is warm after rep 1: the recorded
        # allocation count must not grow with reps.
        again = harness.bench_coal_apply(npts=64, reps=2)
        assert again.extra["workspace_allocations"] == b.extra[
            "workspace_allocations"
        ]


class TestLiveQuickGate:
    """The wired-in CI gate: a fused-transport regression >15% against
    the committed baseline fails tier-1 the same way ``codee verify``
    failures do (exit 2 -> assertion failure here)."""

    def test_transport_quick_gate_is_clean(self):
        reason = _quick_gate_skip_reason()
        if reason:
            pytest.skip(reason)
        # With contended hosts skipped above, the moderate headroom
        # below covers scheduler jitter only; losing the compiled
        # stencil to the numpy fallback is a >2x regression, well past
        # this gate either way.
        proc = subprocess.run(
            [
                sys.executable,
                str(harness.REPO_ROOT / "scripts" / "bench_gate.py"),
                "--quick",
                "--kernel",
                "transport_fused",
                "--threshold",
                "0.3",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "transport_fused" in proc.stdout

    def test_multirank_quick_gate_is_clean(self):
        reason = _quick_gate_skip_reason()
        if reason:
            pytest.skip(reason)
        baseline = harness.load_payload(harness.find_baseline())
        if "model_step_multirank" not in baseline["kernels"]:
            pytest.skip("committed baseline predates the multirank kernel")
        # Scheduler-jitter headroom only (contended hosts skip above);
        # the real protection is a broken process path (crash -> exit 2
        # with a ProcPoolError traceback, or silent fallback to
        # threads, which the smoke test below catches via the payload
        # flag).
        proc = subprocess.run(
            [
                sys.executable,
                str(harness.REPO_ROOT / "scripts" / "bench_gate.py"),
                "--quick",
                "--kernel",
                "model_step_multirank",
                "--threshold",
                "0.3",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "model_step_multirank" in proc.stdout


class TestMultirankBench:
    """Two-worker process-mode smoke step (tier-1, bench_quick)."""

    def test_two_worker_smoke(self):
        b = harness.bench_model_step_multirank(workers=2, reps=1)
        assert b.name == "model_step_multirank"
        assert b.extra["workers"] == 2
        assert b.extra["process_ranks"] is True
        assert b.extra["cpu_count"] >= 1
        assert 0 < b.min_s <= b.median_s <= b.max_s

    def test_rank_scaling_records_speedup(self):
        results = harness.bench_rank_scaling(
            worker_counts=(1, 2), scale=0.05, reps=1
        )
        names = [r.name for r in results]
        assert names == ["rank_scaling_w1", "rank_scaling_w2"]
        assert results[0].extra["speedup_vs_w1"] == 1.0
        assert results[1].extra["speedup_vs_w1"] > 0

    def test_sedimentation_quick_gate_is_clean(self):
        reason = _quick_gate_skip_reason()
        if reason:
            pytest.skip(reason)
        baseline = harness.load_payload(harness.find_baseline())
        if "sedimentation" not in baseline["kernels"]:
            pytest.skip("committed baseline predates the sedimentation kernel")
        # Scheduler-jitter headroom only (contended hosts skip above);
        # losing the compiled path to the numpy fallback is a >2x
        # regression, well past this gate.
        proc = subprocess.run(
            [
                sys.executable,
                str(harness.REPO_ROOT / "scripts" / "bench_gate.py"),
                "--quick",
                "--kernel",
                "sedimentation",
                "--threshold",
                "0.3",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "sedimentation" in proc.stdout


class TestEnsembleBench:
    """Member-batched ensemble bench payloads and the PR-10 quick gate."""

    def test_members_payload(self):
        b = harness.bench_model_step_members(members=2, scale=0.02, reps=1)
        assert b.name == "model_step_members2"
        assert b.extra["members"] == 2
        assert b.extra["batched"] is True
        assert b.extra["per_member_ms"] > 0
        assert b.extra["solo_per_member_ms"] > 0
        assert b.extra["speedup_vs_solo"] > 0
        assert 0 < b.min_s <= b.median_s <= b.max_s

    def test_transport_members_payload(self):
        b = harness.bench_transport_members(
            members=2, shape=(6, 5, 4), reps=2
        )
        assert b.name == "transport_members2"
        assert b.extra["members"] == 2
        assert b.extra["ir_kernel"] == "advect_stage_members"
        assert b.extra["speedup_vs_solo"] > 0
        assert 0 < b.min_s <= b.median_s <= b.max_s

    def test_members_quick_gate_is_clean(self):
        reason = _quick_gate_skip_reason()
        if reason:
            pytest.skip(reason)
        baseline = harness.load_payload(harness.find_baseline())
        if "model_step_members4" not in baseline["kernels"]:
            pytest.skip(
                "committed baseline predates the member-batched kernel"
            )
        # Scheduler-jitter headroom only (contended hosts skip above);
        # the real protection is the batched engine silently falling
        # back to sequential solo models, which the payload's
        # ``batched`` flag catches in test_members_payload.
        proc = subprocess.run(
            [
                sys.executable,
                str(harness.REPO_ROOT / "scripts" / "bench_gate.py"),
                "--quick",
                "--kernel",
                "model_step_members4",
                "--threshold",
                "0.3",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "model_step_members4" in proc.stdout
