"""Unit tests for the wall-clock span tracer.

The contract under test: off by default with a zero-allocation hot
path, rich spans when enabled, thread-safe rank attribution, ring
bounded, and pickle-round-trippable for the worker pipes.
"""

from __future__ import annotations

import threading
import tracemalloc

import pytest

from repro.obs import tracer


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Every test starts and ends with a clean, disabled tracer."""
    tracer.configure(enabled=False, rank=tracer.DRIVER_RANK, clear=True)
    yield
    tracer.configure(
        enabled=False,
        rank=tracer.DRIVER_RANK,
        capacity=tracer.DEFAULT_CAPACITY,
        clear=True,
    )


class TestDisabledPath:
    def test_disabled_by_default_records_nothing(self):
        assert not tracer.enabled()
        with tracer.span("x") as sp:
            assert sp is None
        tracer.instant("marker")
        tracer.counter("c", {"v": 1})
        assert tracer.events() == []

    def test_disabled_span_is_shared_singleton(self):
        # The no-op context manager must be one shared object — the
        # disabled hot path allocates nothing per call.
        a = tracer.span("a")
        b = tracer.span("b", rank=3, cat="kernel")
        assert a is b
        assert a is tracer.rank_scope(7)

    def test_disabled_path_allocates_nothing(self):
        # Warm everything once, then assert the instrumented pattern
        # performs zero allocations attributable to the tracer module.
        def hot(n: int) -> None:
            for _ in range(n):
                with tracer.span("k", cat="kernel") as sp:
                    if sp is not None:
                        sp.set(bytes=1)

        hot(4)
        tracemalloc.start()
        try:
            hot(512)
            snap = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        tracer_allocs = [
            s
            for s in snap.statistics("filename")
            if s.traceback and "tracer.py" in str(s.traceback[0])
        ]
        assert sum(s.size for s in tracer_allocs) == 0, tracer_allocs


class TestEnabledRecording:
    def test_span_records_duration_and_attrs(self):
        tracer.enable()
        with tracer.span("work", rank=2, cat="physics") as sp:
            assert sp is not None
            sp.set(bytes=100, flops=200)
        (e,) = tracer.events()
        assert e.name == "work" and e.ph == "X" and e.cat == "physics"
        assert e.rank == 2 and e.dur >= 0
        assert e.attrs == {"bytes": 100, "flops": 200}

    def test_nested_spans_share_thread_and_order(self):
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()  # completion order: inner first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.tid == outer.tid
        assert outer.ts <= inner.ts
        assert outer.ts + outer.dur >= inner.ts + inner.dur

    def test_rank_resolution_precedence(self):
        tracer.configure(enabled=True, rank=9)
        with tracer.span("default"):
            pass
        with tracer.rank_scope(4):
            with tracer.span("scoped"):
                pass
            with tracer.span("explicit", rank=1):
                pass
        ranks = {e.name: e.rank for e in tracer.events()}
        assert ranks == {"default": 9, "scoped": 4, "explicit": 1}

    def test_rank_scope_is_thread_local(self):
        tracer.enable()
        seen = {}

        def record(rank: int) -> None:
            with tracer.rank_scope(rank):
                with tracer.span(f"r{rank}"):
                    pass

        threads = [
            threading.Thread(target=record, args=(r,)) for r in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seen = {e.name: e.rank for e in tracer.events()}
        assert seen == {f"r{r}": r for r in range(4)}

    def test_ring_buffer_keeps_newest(self):
        tracer.configure(enabled=True, capacity=8, clear=True)
        for i in range(20):
            with tracer.span(f"s{i}"):
                pass
        names = [e.name for e in tracer.events()]
        assert names == [f"s{i}" for i in range(12, 20)]

    def test_counter_snapshots_values(self):
        tracer.enable()
        tracer.counter("cache/x", {"hits": 3, "misses": 1}, rank=0)
        (e,) = tracer.events()
        assert e.ph == "C" and e.attrs == {"hits": 3, "misses": 1}

    def test_span_survives_exceptions(self):
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (e,) = tracer.events()
        assert e.name == "boom"


class TestShipping:
    def test_drain_state_round_trips(self):
        tracer.enable()
        with tracer.span("a", rank=1) as sp:
            sp.set(bytes=7)
        tracer.instant("m", rank=0)
        state = tracer.drain_state()
        assert tracer.events() == []  # drained
        n = tracer.ingest(state)
        assert n == 2
        a, m = tracer.events()
        assert (a.name, a.rank, a.attrs) == ("a", 1, {"bytes": 7})
        assert (m.name, m.ph) == ("m", "I")

    def test_configure_worker_clears_inherited_events(self):
        tracer.enable()
        with tracer.span("driver-side"):
            pass
        tracer.configure_worker(rank=3, trace=True)
        assert tracer.events() == []  # fork inheritance dropped
        assert tracer.enabled()
        assert tracer.default_rank() == 3
        with tracer.span("worker-side"):
            pass
        (e,) = tracer.events()
        assert e.rank == 3

    def test_configure_worker_without_trace_stays_disabled(self):
        tracer.configure_worker(rank=1, trace=False)
        assert not tracer.enabled()
        with tracer.span("x") as sp:
            assert sp is None
        assert tracer.events() == []
