"""Tracing against the live model: all three execution modes.

The guarantees under test:

* tracing records the same logical spans whether ranks run serially,
  thread-batched, or as worker processes (fork) — worker spans cross
  the command pipe and merge onto the driver's timeline;
* a worker failing through its containment path still flushes its
  buffered spans with the error reply;
* tracing never touches the numerics or the simulated clocks — runs
  with tracing on and off are bit-identical, and the exact-equality
  process-rank bar holds with tracing on;
* the tier-1 smoke: trace two steps at two process ranks, export, and
  run the structural validator over the emitted file.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.errors import ProcPoolError
from repro.obs import export, metrics, tracer
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Span names every execution mode must record for a stepped model.
RANK_STAGE_SPANS = {"physics", "transport", "halo_exchange"}


def _load_trace_check():
    spec = importlib.util.spec_from_file_location(
        "trace_check", REPO_ROOT / "scripts" / "trace_check.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracer.configure(enabled=False, rank=tracer.DRIVER_RANK, clear=True)
    yield
    tracer.configure(enabled=False, rank=tracer.DRIVER_RANK, clear=True)


def _traced_run(num_steps: int = 2, **overrides):
    nl = conus12km_namelist(scale=0.05, num_ranks=2, trace=True, **overrides)
    model = WrfModel(nl)
    try:
        model.run(num_steps=num_steps)
    finally:
        model.close()
    return tracer.drain()


class TestModesRecordSameSpans:
    def _names_by_rank(self, events):
        out: dict[int, set] = {}
        for e in events:
            if e.ph == "X":
                out.setdefault(e.rank, set()).add(e.name)
        return out

    def test_serial_mode(self):
        events = _traced_run(rank_batching=False, use_process_ranks=False)
        by_rank = self._names_by_rank(events)
        for rank in (0, 1):
            assert RANK_STAGE_SPANS <= by_rank[rank]
        assert "solve_em" in by_rank[tracer.DRIVER_RANK]

    def test_thread_mode(self):
        events = _traced_run(rank_batching=True, use_process_ranks=False)
        by_rank = self._names_by_rank(events)
        for rank in (0, 1):
            assert RANK_STAGE_SPANS <= by_rank[rank]

    def test_process_mode_ships_worker_spans(self):
        events = _traced_run(use_process_ranks=True)
        by_rank = self._names_by_rank(events)
        for rank in (0, 1):
            assert RANK_STAGE_SPANS <= by_rank[rank], by_rank
        # Worker spans merge onto the driver's monotonic timeline and
        # nest inside the driver's solve_em window.
        solve = [
            e for e in events
            if e.name == "solve_em" and e.rank == tracer.DRIVER_RANK
        ]
        assert len(solve) == 2
        t0 = min(e.ts for e in solve)
        t1 = max(e.ts + e.dur for e in solve)
        for e in events:
            if e.ph == "X" and e.rank in (0, 1):
                assert t0 <= e.ts and e.ts + e.dur <= t1

    def test_process_mode_emits_cache_counters(self):
        events = _traced_run(use_process_ranks=True)
        counters = {e.name for e in events if e.ph == "C"}
        assert any(name.startswith("cache/") for name in counters)

    def test_work_attrs_support_roofline_annotation(self):
        events = _traced_run(use_process_ranks=True)
        n = metrics.annotate(events)
        assert n > 0
        transports = [e for e in events if e.name == "transport"]
        assert transports
        for e in transports:
            assert e.attrs["flops"] > 0 and e.attrs["bytes"] > 0
            assert "roofline_pct" in e.attrs and "gb_s" in e.attrs
        halos = [e for e in events if e.name == "halo_exchange"]
        assert halos and all("bw_pct" in e.attrs for e in halos)


class TestTracingIsInert:
    def _run(self, trace: bool, **overrides):
        nl = conus12km_namelist(
            scale=0.05, num_ranks=2, seed=17, trace=trace, **overrides
        )
        model = WrfModel(nl)
        try:
            model.run(num_steps=2)
            output = model.gather_output()
            clocks = [c.state() for c in model.clocks]
            elapsed = model.scheduler.elapsed
        finally:
            model.close()
        tracer.configure(enabled=False, clear=True)
        return output, clocks, elapsed

    @pytest.mark.parametrize("use_process_ranks", [False, True])
    def test_clocks_and_fields_bit_identical(self, use_process_ranks):
        import numpy as np

        off = self._run(False, use_process_ranks=use_process_ranks)
        on = self._run(True, use_process_ranks=use_process_ranks)
        for name in off[0]:
            np.testing.assert_array_equal(on[0][name], off[0][name], err_msg=name)
        assert on[1] == off[1]  # every bucket, every region, no tolerance
        assert on[2] == off[2]

    def test_process_equals_threads_with_tracing_on(self):
        import numpy as np

        threads = self._run(True, use_process_ranks=False)
        procs = self._run(True, use_process_ranks=True)
        for name in threads[0]:
            np.testing.assert_array_equal(
                procs[0][name], threads[0][name], err_msg=name
            )
        assert procs[1] == threads[1]
        assert procs[2] == threads[2]


class TestCrashedWorkerSpans:
    def test_containment_path_flushes_worker_spans(self):
        nl = conus12km_namelist(
            scale=0.05, num_ranks=2, trace=True, use_process_ranks=True
        )
        model = WrfModel(nl)
        try:
            model.step()
            pre = {e.rank for e in tracer.events() if e.ph == "X"}
            assert {0, 1} <= pre  # step spans arrived with the replies
            tracer.clear()
            with pytest.raises(ProcPoolError, match="induced worker error"):
                model._pool.induce_error(0)
            # The error reply carried whatever rank 0 had buffered
            # since the last drain (at least its re-armed state is
            # merged without raising); the pool itself is torn down.
            assert model._pool._closed
        finally:
            model.close()

    def test_error_reply_carries_buffered_spans(self):
        # Drive the pool directly: step once (drains), then record
        # nothing driver-side and induce the failure — the spans from
        # the failing command window must still arrive.
        from repro.wrf import procpool

        nl = conus12km_namelist(
            scale=0.05, num_ranks=2, trace=True, use_process_ranks=True
        )
        model = WrfModel(nl)
        try:
            model.step()
            tracer.clear()
            # Make the worker buffer spans it has not shipped yet:
            # charge_io replies drain, so run a step and throw away the
            # driver copy, then fail the next command.
            model.step()
            stepped = [e for e in tracer.events() if e.rank in (0, 1)]
            assert stepped  # shipped with the ok replies
            with pytest.raises(ProcPoolError):
                model._pool.induce_error(1)
        finally:
            model.close()


class TestTier1TraceSmoke:
    def test_two_steps_two_ranks_validates(self, tmp_path):
        events = _traced_run(num_steps=2, use_process_ranks=True)
        metrics.annotate(events)
        trace_path = export.write_trace(events, tmp_path / "trace.json")

        trace_check = _load_trace_check()
        code, messages = trace_check.check_file(trace_path, min_ranks=2)
        assert code == 0, messages

        payload = json.loads(trace_path.read_text())
        names = {
            d["name"] for d in payload["traceEvents"] if d["ph"] == "B"
        }
        assert RANK_STAGE_SPANS <= names
        counter_names = {
            d["name"] for d in payload["traceEvents"] if d["ph"] == "C"
        }
        assert any(n.startswith("cache/") for n in counter_names)
        # Roofline attrs survive export on the work-carrying spans.
        annotated = [
            d
            for d in payload["traceEvents"]
            if d["ph"] == "B" and "roofline_pct" in d.get("args", {})
        ]
        assert annotated
