"""Perfetto export, self-time aggregation, roofline annotation.

Synthetic event streams with known timings drive the exporter and the
metrics annotator; the emitted ``traceEvents`` are additionally run
through the structural validator that ``scripts/trace_check.py`` wraps.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.core.cache import get_cache
from repro.obs import export, metrics, tracer
from repro.obs.tracer import Event

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_trace_check():
    spec = importlib.util.spec_from_file_location(
        "trace_check", REPO_ROOT / "scripts" / "trace_check.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


trace_check = _load_trace_check()


def span(name, rank, ts, dur, tid=1, attrs=None, cat="model"):
    return Event(name, cat, "X", rank, tid, ts, dur, attrs)


class TestTraceEvents:
    def test_nested_spans_emit_balanced_lifo_pairs(self):
        evs = [
            span("outer", 0, 1000, 900),
            span("inner", 0, 1100, 300),
            span("inner2", 0, 1500, 200),
        ]
        out = export.to_trace_events(evs)
        assert trace_check.validate_events(out) == []
        seq = [(d["ph"], d["name"]) for d in out if d["ph"] in "BE"]
        assert seq == [
            ("B", "outer"),
            ("B", "inner"),
            ("E", "inner"),
            ("B", "inner2"),
            ("E", "inner2"),
            ("E", "outer"),
        ]

    def test_zero_duration_and_tied_timestamps_stay_balanced(self):
        evs = [
            span("p", 0, 100, 50),
            span("z1", 0, 100, 0),
            span("z2", 0, 100, 0),
            span("tail", 0, 150, 0),
        ]
        assert trace_check.validate_events(export.to_trace_events(evs)) == []

    def test_ranks_map_to_pids_with_metadata(self):
        evs = [
            span("a", 0, 0, 10),
            span("b", 1, 5, 10),
            span("drv", tracer.DRIVER_RANK, 0, 20),
        ]
        out = export.to_trace_events(evs)
        meta = {
            d["pid"]: d["args"]["name"]
            for d in out
            if d["ph"] == "M" and d["name"] == "process_name"
        }
        assert meta == {0: "rank 0", 1: "rank 1", export.DRIVER_PID: "driver"}
        assert trace_check.validate_events(out) == []

    def test_counters_and_instants_pass_through(self):
        evs = [
            Event("cache/x", "counter", "C", 0, 1, 10, 0, {"hits": 2}),
            Event("mark", "jit", "I", 0, 1, 20, 0, None),
        ]
        out = export.to_trace_events(evs)
        assert trace_check.validate_events(out) == []
        phases = {d["ph"] for d in out if d["ph"] != "M"}
        assert phases == {"C", "i"}

    def test_write_trace_and_jsonl(self, tmp_path):
        evs = [span("a", 0, 0, 10, attrs={"bytes": 4})]
        tp = export.write_trace(evs, tmp_path / "t.json")
        payload = json.loads(tp.read_text())
        assert payload["traceEvents"]
        jp = export.write_jsonl(evs, tmp_path / "t.jsonl")
        (line,) = jp.read_text().splitlines()
        rec = json.loads(line)
        assert rec["name"] == "a" and rec["attrs"] == {"bytes": 4}

    def test_threads_renumber_per_pid(self):
        evs = [
            span("a", 0, 0, 5, tid=123456),
            span("b", 0, 10, 5, tid=789012),
            span("c", 1, 0, 5, tid=123456),
        ]
        out = export.to_trace_events(evs)
        tids = {
            (d["pid"], d["name"]): d["tid"] for d in out if d["ph"] == "B"
        }
        assert tids[(0, "a")] == 1 and tids[(0, "b")] == 2
        assert tids[(1, "c")] == 1


class TestSelfTimes:
    def test_self_excludes_direct_children(self):
        evs = [
            span("outer", 0, 0, 100),
            span("child", 0, 10, 30),
            span("child", 0, 50, 20),
        ]
        agg = export.self_times(evs)
        assert agg["outer"]["total_ns"] == 100
        assert agg["outer"]["self_ns"] == 50
        assert agg["child"] == {"count": 2, "total_ns": 50, "self_ns": 50}

    def test_tracks_do_not_cross_ranks(self):
        # Same thread id but different ranks = different timelines:
        # rank 1's span is not a child of rank 0's.
        evs = [span("a", 0, 0, 100), span("b", 1, 10, 30)]
        agg = export.self_times(evs)
        assert agg["a"]["self_ns"] == 100
        assert agg["b"]["self_ns"] == 30

    def test_table_renders_top_n(self):
        evs = [span("hot", 0, 0, 100), span("cold", 0, 200, 10)]
        table = export.self_time_table(evs, top=1)
        assert "hot" in table and "cold" not in table

    def test_table_handles_empty(self):
        assert "no spans" in export.self_time_table([])


class TestMetrics:
    def test_annotate_derives_rates_and_roofline_pct(self):
        # 1 GB + 2 GFLOP in 1 s => 1 GB/s, 2 GFLOP/s, ai = 2.
        e = span("k", 0, 0, 1_000_000_000, attrs={"bytes": 1e9, "flops": 2e9})
        n = metrics.annotate([e])
        assert n == 1
        assert e.attrs["gb_s"] == pytest.approx(1.0, rel=1e-3)
        assert e.attrs["gflop_s"] == pytest.approx(2.0, rel=1e-3)
        assert e.attrs["ai"] == pytest.approx(2.0, rel=1e-3)
        model = metrics.host_roofline()
        ceiling = model.ceiling(2.0, "fp64")
        assert e.attrs["roofline_pct"] == pytest.approx(
            100.0 * 2e9 / ceiling, rel=1e-2
        )
        assert "host-nominal" in e.attrs["roofline_model"]

    def test_bandwidth_only_span_gets_bw_pct(self):
        e = span("halo", 0, 0, 1_000_000, attrs={"bytes": 1e6})
        metrics.annotate([e])
        assert e.attrs["gb_s"] == pytest.approx(1.0, rel=1e-3)
        assert "bw_pct" in e.attrs and "roofline_pct" not in e.attrs

    def test_annotate_skips_worklless_and_zero_duration(self):
        evs = [
            span("plain", 0, 0, 10),
            span("zero", 0, 0, 0, attrs={"bytes": 10}),
            Event("c", "counter", "C", 0, 1, 0, 0, {"v": 1}),
        ]
        assert metrics.annotate(evs) == 0

    def test_host_nominal_spec_scales_cpu(self):
        spec = metrics.host_nominal_spec()
        assert spec.peak_flops_fp32 == 2.0 * spec.peak_flops_fp64
        assert spec.dram_bandwidth > 0

    def test_cache_counters_emitted_when_enabled(self):
        tracer.configure(enabled=True, clear=True)
        try:
            cache = get_cache("obs.test_cache")
            cache.get_or_build("k", lambda: 1)
            n = metrics.emit_cache_counters(rank=0)
            assert n >= 1
            names = {e.name for e in tracer.events() if e.ph == "C"}
            assert "cache/obs.test_cache" in names
        finally:
            tracer.configure(enabled=False, clear=True)

    def test_cache_counters_noop_when_disabled(self):
        tracer.configure(enabled=False, clear=True)
        assert metrics.emit_cache_counters() == 0
        assert tracer.events() == []


class TestTraceCheckScript:
    def _write(self, tmp_path, events):
        p = tmp_path / "trace.json"
        p.write_text(json.dumps({"traceEvents": events}))
        return p

    def test_valid_trace_exits_0(self, tmp_path):
        evs = [span("a", 0, 0, 10), span("b", 1, 0, 10)]
        p = self._write(tmp_path, export.to_trace_events(evs))
        code, msgs = trace_check.check_file(p, min_ranks=2)
        assert code == 0, msgs

    def test_unbalanced_trace_exits_2(self, tmp_path):
        events = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "rank 0"}},
            {"name": "open", "ph": "B", "ts": 1.0, "pid": 0, "tid": 1},
        ]
        code, msgs = trace_check.check_file(self._write(tmp_path, events))
        assert code == 2
        assert any("never closed" in m for m in msgs)

    def test_mismatched_names_exit_2(self, tmp_path):
        events = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "rank 0"}},
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 0, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2.0, "pid": 0, "tid": 1},
        ]
        code, msgs = trace_check.check_file(self._write(tmp_path, events))
        assert code == 2
        assert any("LIFO" in m for m in msgs)

    def test_backwards_ts_exit_2(self, tmp_path):
        events = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "rank 0"}},
            {"name": "a", "ph": "B", "ts": 5.0, "pid": 0, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 0, "tid": 1},
        ]
        code, msgs = trace_check.check_file(self._write(tmp_path, events))
        assert code == 2
        assert any("backwards" in m for m in msgs)

    def test_undeclared_pid_exit_2(self, tmp_path):
        events = [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 7, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 7, "tid": 1},
        ]
        code, msgs = trace_check.check_file(self._write(tmp_path, events))
        assert code == 2
        assert any("process_name" in m for m in msgs)

    def test_missing_file_exits_1(self, tmp_path):
        code, _ = trace_check.check_file(tmp_path / "nope.json")
        assert code == 1

    def test_cli_end_to_end(self, tmp_path):
        import subprocess

        evs = [span("a", 0, 0, 10)]
        p = self._write(tmp_path, export.to_trace_events(evs))
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "trace_check.py"),
                str(p),
                "--min-ranks",
                "1",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout
