"""Simulated MPI: messages, collectives, GPU sharing, the BSP scheduler."""

import numpy as np
import pytest

from repro.core.clock import SimClock, TimeBucket
from repro.errors import ConfigurationError, MpiError
from repro.mpi.comm import SimWorld, allreduce, barrier
from repro.mpi.costmodel import CommCostModel
from repro.mpi.gpu_sharing import GpuPool, bind_ranks_round_robin
from repro.mpi.scheduler import RankStepCharge, StepScheduler


@pytest.fixture
def world():
    return SimWorld(nranks=4, cost=CommCostModel(ranks_per_node=2))


class TestCommCostModel:
    def test_node_placement(self):
        cost = CommCostModel(ranks_per_node=4)
        assert cost.node_of(0) == cost.node_of(3) == 0
        assert cost.node_of(4) == 1

    def test_intra_node_cheaper_than_inter(self):
        cost = CommCostModel(ranks_per_node=4)
        assert cost.p2p_time(0, 1, 1 << 20) < cost.p2p_time(0, 5, 1 << 20)

    def test_allreduce_scales_logarithmically(self):
        cost = CommCostModel(ranks_per_node=64)
        t4 = cost.allreduce_time(4, 8)
        t64 = cost.allreduce_time(64, 8)
        assert t4 < t64 < 10 * t4

    def test_sync_noise_grows_with_job_size(self):
        cost = CommCostModel(ranks_per_node=64)
        assert cost.step_sync_noise(1) == 0.0
        assert cost.step_sync_noise(256) > cost.step_sync_noise(16) > 0


class TestPointToPoint:
    def test_send_recv_moves_data_and_charges_time(self, world):
        c0, c1 = world.comm(0), world.comm(1)
        data = np.arange(10.0)
        c0.Send(data, dest=1)
        buf = np.empty(10)
        c1.Recv(buf, source=0)
        np.testing.assert_array_equal(buf, data)
        assert world.clocks[0].bucket(TimeBucket.MPI) > 0
        assert world.clocks[1].bucket(TimeBucket.MPI) > 0

    def test_recv_without_send_deadlocks(self, world):
        with pytest.raises(MpiError, match="deadlock"):
            world.comm(1).Recv(np.empty(3), source=0)

    def test_shape_mismatch_detected(self, world):
        world.comm(0).Send(np.zeros(4), dest=1)
        with pytest.raises(MpiError, match="shape"):
            world.comm(1).Recv(np.empty(5), source=0)

    def test_send_to_self_rejected(self, world):
        with pytest.raises(MpiError):
            world.comm(2).Send(np.zeros(3), dest=2)

    def test_sendrecv_pairs(self, world):
        a = np.full(4, 1.0)
        b = np.full(4, 2.0)
        ra = np.empty(4)
        rb = np.empty(4)
        world.comm(0).Send(a, dest=1, tag=7)
        world.comm(1).Sendrecv(b, dest=0, recvbuf=ra, source=0, tag=7)
        # ra received rank 0's tag-7 message.
        np.testing.assert_array_equal(ra, a)

    def test_messages_fifo_per_channel(self, world):
        world.comm(0).Send(np.array([1.0]), dest=1)
        world.comm(0).Send(np.array([2.0]), dest=1)
        buf = np.empty(1)
        world.comm(1).Recv(buf, source=0)
        assert buf[0] == 1.0


class TestCollectives:
    def test_allreduce_sum(self, world):
        contribs = [np.full(3, float(r)) for r in range(4)]
        out = allreduce(world, contribs, op="sum")
        np.testing.assert_array_equal(out, np.full(3, 6.0))

    def test_allreduce_charges_every_rank(self, world):
        allreduce(world, [np.zeros(1)] * 4)
        assert all(c.bucket(TimeBucket.MPI) > 0 for c in world.clocks)

    def test_allreduce_max_min(self, world):
        contribs = [np.array([float(r)]) for r in range(4)]
        assert allreduce(world, contribs, op="max")[0] == 3.0
        assert allreduce(world, contribs, op="min")[0] == 0.0

    def test_barrier(self, world):
        barrier(world)
        assert all(c.bucket(TimeBucket.MPI) > 0 for c in world.clocks)

    def test_wrong_contribution_count(self, world):
        with pytest.raises(MpiError):
            allreduce(world, [np.zeros(1)] * 3)


class TestGpuSharing:
    def test_round_robin_binding(self):
        assert bind_ranks_round_robin(8, 4) == [0, 1, 2, 3, 0, 1, 2, 3]
        with pytest.raises(ConfigurationError):
            bind_ranks_round_robin(4, 0)

    def test_serialization_sums_per_device(self):
        pool = GpuPool(num_gpus=2)
        pool.bind(4)  # ranks 0,2 -> gpu0; 1,3 -> gpu1
        busy = pool.serialize_kernel_time([1.0, 5.0, 2.0, 1.0])
        assert busy == 6.0  # gpu1 carries 5+1

    def test_ranks_on(self):
        pool = GpuPool(num_gpus=2)
        pool.bind(5)
        assert pool.ranks_on(0) == [0, 2, 4]

    def test_serialize_requires_binding(self):
        pool = GpuPool(num_gpus=2)
        with pytest.raises(ConfigurationError):
            pool.serialize_kernel_time([1.0])


class TestStepScheduler:
    def _charge(self, cpu=0.0, gpu=0.0, tx=0.0, mpi=0.0, io=0.0):
        return RankStepCharge(cpu=cpu, gpu_kernel=gpu, transfers=tx, mpi=mpi, io=io)

    def test_cpu_phases_overlap_across_ranks(self):
        sched = StepScheduler(nranks=3)
        step = sched.commit_step(
            [self._charge(cpu=1.0), self._charge(cpu=4.0), self._charge(cpu=2.0)]
        )
        assert step == 4.0  # the slowest rank, not the sum

    def test_imbalance_sets_the_pace(self):
        """The FSBM load-imbalance mechanism (Sec. VIII)."""
        balanced = StepScheduler(nranks=4).commit_step(
            [self._charge(cpu=1.0)] * 4
        )
        imbalanced = StepScheduler(nranks=4).commit_step(
            [self._charge(cpu=0.1)] * 3 + [self._charge(cpu=3.7)]
        )
        assert imbalanced > 3 * balanced

    def test_gpu_serialization_through_pool(self):
        pool = GpuPool(num_gpus=1)
        pool.bind(2)
        sched = StepScheduler(nranks=2, gpu_pool=pool)
        step = sched.commit_step(
            [self._charge(cpu=1.0, gpu=2.0), self._charge(cpu=1.0, gpu=3.0)]
        )
        assert step == pytest.approx(1.0 + 5.0)  # kernels queue on one GPU

    def test_breakdown_accumulates(self):
        sched = StepScheduler(nranks=1)
        sched.commit_step([self._charge(cpu=1.0, mpi=0.5, io=0.25)])
        sched.commit_step([self._charge(cpu=1.0)])
        assert sched.breakdown["cpu"] == pytest.approx(2.0)
        assert sched.breakdown["mpi"] == pytest.approx(0.5)
        assert sched.elapsed == pytest.approx(2.75)

    def test_clock_delta_conversion(self):
        clock = SimClock()
        before = clock.snapshot()
        clock.advance(TimeBucket.CPU_COMPUTE, 2.0)
        clock.advance(TimeBucket.H2D, 0.5)
        charge = RankStepCharge.from_clock_delta(before, clock.snapshot())
        assert charge.cpu == 2.0
        assert charge.transfers == 0.5
