"""Property-based invariants of the BSP step scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.gpu_sharing import GpuPool
from repro.mpi.scheduler import RankStepCharge, StepScheduler

charge_st = st.builds(
    RankStepCharge,
    cpu=st.floats(0, 10),
    gpu_kernel=st.floats(0, 10),
    transfers=st.floats(0, 2),
    mpi=st.floats(0, 2),
    io=st.floats(0, 2),
)


@given(charges=st.lists(charge_st, min_size=1, max_size=16))
@settings(max_examples=60, deadline=None)
def test_step_bounded_between_max_rank_and_sum(charges):
    """No rank finishes before its own work; nothing exceeds full
    serialization."""
    sched = StepScheduler(nranks=len(charges))
    step = sched.commit_step(charges)
    per_rank = [
        c.cpu + c.transfers + c.gpu_kernel + c.mpi + c.io for c in charges
    ]
    assert step >= max(per_rank) - 1e-9
    assert step <= sum(per_rank) + 1e-9


@given(charges=st.lists(charge_st, min_size=2, max_size=12))
@settings(max_examples=40, deadline=None)
def test_sharing_one_gpu_never_faster_than_many(charges):
    n = len(charges)
    one = GpuPool(num_gpus=1)
    one.bind(n)
    many = GpuPool(num_gpus=n)
    many.bind(n)
    t_one = StepScheduler(nranks=n, gpu_pool=one).commit_step(charges)
    t_many = StepScheduler(nranks=n, gpu_pool=many).commit_step(charges)
    assert t_one >= t_many - 1e-9


@given(charges=st.lists(charge_st, min_size=1, max_size=8), rounds=st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_elapsed_additive_over_steps(charges, rounds):
    sched = StepScheduler(nranks=len(charges))
    per_step = [sched.commit_step(charges) for _ in range(rounds)]
    assert sched.elapsed == pytest.approx(sum(per_step))
    assert all(s == pytest.approx(per_step[0]) for s in per_step)


@given(charges=st.lists(charge_st, min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_breakdown_sums_to_elapsed(charges):
    sched = StepScheduler(nranks=len(charges))
    sched.commit_step(charges)
    assert sum(sched.breakdown.values()) == pytest.approx(sched.elapsed)
