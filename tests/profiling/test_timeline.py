"""The Nsight-style ASCII timeline."""

import pytest

from repro.core.env import PAPER_ENV
from repro.optim.stages import Stage
from repro.profiling.nsight_systems import render_timeline
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


@pytest.fixture(scope="module")
def gpu_result():
    nl = conus12km_namelist(
        scale=0.05,
        num_ranks=2,
        stage=Stage.OFFLOAD_COLLAPSE3,
        num_gpus=2,
        env=PAPER_ENV,
    )
    model = WrfModel(nl)
    try:
        return model.run(num_steps=3)
    finally:
        model.close()


def test_timeline_has_one_row_per_step(gpu_result):
    text = render_timeline(gpu_result, rank=0)
    assert text.count("step ") == 3
    assert "ms" in text


def test_timeline_shows_gpu_and_cpu_lanes(gpu_result):
    text = render_timeline(gpu_result, rank=0)
    assert "#" in text  # CPU segment
    assert "%" in text or "~" in text  # device activity


def test_cpu_only_run_has_no_gpu_segments():
    model = WrfModel(conus12km_namelist(scale=0.05, num_ranks=2))
    result = model.run(num_steps=2)
    text = render_timeline(result, rank=0)
    assert "%" not in text.replace("%=GPU kernels", "")


def test_empty_result_handled():
    model = WrfModel(conus12km_namelist(scale=0.05, num_ranks=2))
    result = model.run(num_steps=1)
    result.step_timings.clear()
    assert "no steps" in render_timeline(result)
