"""Profiler shims: gprof aggregation, nsys single-rank view, ncu metrics."""

import numpy as np
import pytest

from repro.core.clock import SimClock, TimeBucket
from repro.core.device import Device
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV
from repro.core.kernel import Kernel, KernelResources
from repro.hardware.memory import AccessPattern, TrafficComponent
from repro.optim.stages import Stage
from repro.profiling.gprof import TABLE1_ROUTINES, GprofReport
from repro.profiling.nsight_compute import NcuReport, format_table6
from repro.profiling.nsight_systems import NsysReport
from repro.profiling.nvtx import NvtxDomain, nvtx_range
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


@pytest.fixture(scope="module")
def run_result():
    model = WrfModel(conus12km_namelist(scale=0.06, num_ranks=2))
    return model.run(num_steps=2)


class TestNvtx:
    def test_range_charges_region(self):
        clock = SimClock()
        with nvtx_range(clock, "fast_sbm"):
            clock.advance(TimeBucket.CPU_COMPUTE, 1.0)
        assert clock.region_total("fast_sbm") == 1.0

    def test_domain_push_pop(self):
        clock = SimClock()
        dom = NvtxDomain(clock, "wrf")
        dom.range_push("microphysics")
        clock.advance(TimeBucket.CPU_COMPUTE, 2.0)
        dom.range_pop()
        assert clock.region_total("wrf:microphysics") == 2.0

    def test_unbalanced_pop_rejected(self):
        dom = NvtxDomain(SimClock())
        with pytest.raises(RuntimeError):
            dom.range_pop()


class TestGprof:
    def test_percentages_sum_below_100(self, run_result):
        rep = GprofReport.from_run(run_result, TABLE1_ROUTINES)
        total_pct = sum(r.percent for r in rep.rows)
        assert 0 < total_pct <= 100.0

    def test_fast_sbm_among_top_hotspots(self, run_result):
        """At this reduced test scale the storm population is sparse, so
        fast_sbm need not dominate as in Table I — but it must be a
        first-order contributor (the bench config reproduces the
        dominance; see experiments/table1)."""
        rep = GprofReport.from_run(run_result, TABLE1_ROUTINES)
        top_two = {r.name for r in rep.rows[:2]}
        assert "fast_sbm" in top_two
        assert rep.percent_of("fast_sbm") > 5.0

    def test_unknown_routine_zero(self, run_result):
        rep = GprofReport.from_run(run_result, TABLE1_ROUTINES)
        assert rep.percent_of("nonexistent") == 0.0

    def test_auto_discovery_of_regions(self, run_result):
        rep = GprofReport.from_run(run_result)
        names = [r.name for r in rep.rows]
        assert "fast_sbm" in names and "sedimentation" in names

    def test_format(self, run_result):
        text = GprofReport.from_run(run_result, TABLE1_ROUTINES).format_table()
        assert "% time" in text and "fast_sbm" in text


class TestNsys:
    def test_defaults_to_most_loaded_rank(self, run_result):
        rep = NsysReport.from_run(run_result)
        loads = [
            c.region_total("fast_sbm") for c in run_result.rank_clocks
        ]
        assert rep.rank == int(np.argmax(loads))

    def test_single_rank_view_differs_from_aggregate(self, run_result):
        """Load imbalance: the busy rank's fast_sbm share exceeds the
        cross-rank average — the Table I gprof/nsys gap."""
        gprof = GprofReport.from_run(run_result, TABLE1_ROUTINES)
        nsys = NsysReport.from_run(run_result)
        assert nsys.percent_of("fast_sbm") >= gprof.percent_of("fast_sbm")

    def test_explicit_rank(self, run_result):
        rep = NsysReport.from_run(run_result, rank=0)
        assert rep.rank == 0

    def test_format(self, run_result):
        assert "NVTX range summary" in NsysReport.from_run(run_result).format_table()


class TestNcu:
    def _records(self, n=3):
        engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
        kernel = Kernel(
            name="coal_bott_new_loop",
            loop_extents=(20, 10, 20),
            resources=KernelResources(
                registers_per_thread=74,
                automatic_array_bytes=0,
                working_set_per_thread=4752.0,
                flops=1e8,
                traffic=(
                    TrafficComponent(
                        name="w",
                        pattern=AccessPattern.GLOBAL_STRIDED,
                        read_bytes=1e7,
                        write_bytes=1e7,
                    ),
                ),
                active_iterations=2000,
            ),
        )
        for _ in range(n):
            engine.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))
        return engine.records

    def test_aggregation_over_launches(self):
        report = NcuReport.from_records(self._records(3))
        k = report.kernel("coal_bott_new_loop")
        assert k.launches == 3
        assert k.time_ms > 0
        assert 0 < k.achieved_occupancy_pct <= 100
        assert k.dram_read_gb > 0

    def test_unknown_kernel_keyerror(self):
        report = NcuReport.from_records(self._records(1))
        with pytest.raises(KeyError):
            report.kernel("nope")

    def test_roofline_point_conversion(self):
        k = NcuReport.from_records(self._records(2)).kernel("coal_bott_new_loop")
        p = k.roofline_point()
        assert p.arithmetic_intensity > 0
        assert p.performance > 0

    def test_table6_formatting(self):
        k = NcuReport.from_records(self._records(1)).kernel("coal_bott_new_loop")
        text = format_table6(k, k)
        assert "Achieved occupancy" in text
        assert "Reads from DRAM" in text
