"""Every experiment runs in quick mode and shows the paper's directions.

These are integration tests over the whole stack: model, engine, cost
models, profilers, projection. They assert *directional* agreement
(who wins, what grows, what shrinks) — the magnitudes belong to the
benchmark harness at its larger configuration.
"""

import math

import pytest

from repro.experiments import (
    figure3,
    figure4,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    verification,
)
from repro.experiments.common import BenchConfig


@pytest.fixture(scope="module")
def cfg():
    return BenchConfig.quick()


class TestTable1(object):
    def test_hotspots_present_and_ranked(self, cfg):
        r = table1.run(config=cfg)
        assert r.gprof.percent_of("fast_sbm") > 0
        assert r.gprof.percent_of("rk_scalar_tend") > r.gprof.percent_of(
            "rk_update_scalar"
        )
        # The single-task Nsight view shows a larger fast_sbm share than
        # the cross-rank gprof aggregate (load imbalance).
        assert r.nsys.percent_of("fast_sbm") >= r.gprof.percent_of("fast_sbm")
        assert "Table I" in r.format_table()
        assert "paper vs measured" in r.compare_to_paper()


class TestTable2:
    def test_environment_block(self):
        r = table2.run()
        assert r.env.stack_bytes == 65536
        assert "NVHPC" in r.format_table()
        assert "matches" in r.compare_to_paper()


class TestTables345:
    def test_lookup_speedup_direction(self, cfg):
        r = table3.run(config=cfg)
        assert r.speedup_of("fast_sbm") > 1.2
        assert r.speedup_of("Overall") > 1.05
        assert r.speedup_of("fast_sbm") > r.speedup_of("Overall")

    def test_collapse2_speeds_the_collision_loop(self, cfg):
        r = table4.run(config=cfg)
        assert r.row("coal_bott_new loop").current_speedup > 2.0
        assert r.row("Overall").cumulative_speedup > 1.2

    def test_collapse3_compounds(self, cfg):
        r4 = table4.run(config=cfg)
        r5 = table5.run(config=cfg)
        assert r5.row("coal_bott_new loop").current_speedup > 1.5
        assert (
            r5.row("coal_bott_new loop").cumulative_speedup
            > r4.row("coal_bott_new loop").cumulative_speedup
        )
        assert (
            r5.row("Overall").cumulative_speedup
            >= r4.row("Overall").cumulative_speedup
        )


class TestTable6:
    def test_metric_directions_match_paper(self, cfg):
        r = table6.run(config=cfg)
        c2, c3 = r.collapse2, r.collapse3
        assert c3.time_ms < c2.time_ms / 3
        assert c3.achieved_occupancy_pct > 5 * c2.achieved_occupancy_pct
        assert c3.l1_hit_rate_pct < c2.l1_hit_rate_pct
        assert c3.l2_hit_rate_pct < c2.l2_hit_rate_pct
        assert c3.dram_read_gb > c2.dram_read_gb
        assert c3.dram_write_gb > c2.dram_write_gb

    def test_collapse3_occupancy_in_paper_band(self, cfg):
        r = table6.run(config=cfg)
        assert 25.0 < r.collapse3.achieved_occupancy_pct < 50.0


class TestFigure3:
    def test_all_qualitative_checks_pass(self, cfg):
        r = figure3.run(config=cfg)
        assert "MISS" not in r.compare_to_paper()
        assert len(r.points) == 4

    def test_fp64_points_slower(self, cfg):
        r = figure3.run(config=cfg)
        assert (
            r.point("collapse(3) fp64").performance
            < r.point("collapse(3) fp32").performance
        )


class TestFigure4AndTable7:
    @pytest.fixture(scope="class")
    def fig4(self, cfg):
        return figure4.run(config=cfg)

    def test_gpu_wins_at_fixed_gpus(self, fig4):
        for group in ("16 ranks", "32 ranks", "64 ranks"):
            assert fig4.seconds(group, "gpu") < fig4.seconds(group, "baseline")
            assert fig4.seconds(group, "lookup") < fig4.seconds(group, "baseline")

    def test_elapsed_decreases_with_more_ranks(self, fig4):
        base = [fig4.seconds(g, "baseline") for g in ("16 ranks", "32 ranks", "64 ranks")]
        assert base[0] > base[1] > base[2]

    def test_equal_resources_near_parity(self, fig4):
        """The 2-node group: the GPU advantage collapses (paper 0.956x)."""
        ratio = fig4.seconds("2 nodes", "baseline") / fig4.seconds("2 nodes", "gpu")
        assert 0.7 < ratio < 1.6

    def test_table7_headline_speedup(self, fig4, cfg):
        r = table7.run(config=cfg)
        assert 1.7 < r.speedup("16 ranks") < 2.6  # paper: 2.08x
        assert r.speedup("2 nodes") < r.speedup("16 ranks")


class TestVerification:
    def test_digit_agreement_bands(self, cfg):
        r = verification.run(config=cfg)
        for name in verification.STATE_FIELDS:
            assert r.field(name).digits >= 3.0, name
        for name in verification.MICRO_FIELDS:
            assert r.field(name).digits >= 1.0, name

    def test_gpu_run_is_not_bitwise_identical(self, cfg):
        r = verification.run(config=cfg)
        assert any(not d.bitwise_identical for d in r.diffs)

    def test_micro_fields_differ_more_than_state(self, cfg):
        r = verification.run(config=cfg)
        micro = min(r.field(n).digits for n in verification.MICRO_FIELDS)
        state = min(r.field(n).digits for n in verification.STATE_FIELDS)
        assert micro <= state + 0.5
