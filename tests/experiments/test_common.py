"""Experiment plumbing: configs, paper-value comparison, caching."""

import pytest

from repro.experiments.common import (
    BenchConfig,
    PaperValue,
    cached_rates,
    cached_sequence,
    comparison_lines,
    config_for,
    sequence_for,
)


class TestBenchConfig:
    def test_quick_smaller_than_full(self):
        q, f = BenchConfig.quick(), BenchConfig.full()
        assert q.scale < f.scale
        assert q.num_steps < f.num_steps

    def test_config_for_flag(self):
        assert config_for(True) == BenchConfig.quick()
        assert config_for(False) == BenchConfig.full()

    def test_namelist_overrides(self):
        from repro.optim.stages import Stage

        nl = BenchConfig.quick().namelist(stage=Stage.LOOKUP)
        assert nl.stage is Stage.LOOKUP
        assert nl.num_ranks == BenchConfig.quick().num_ranks


class TestPaperValue:
    def test_ratio(self):
        v = PaperValue("x", paper=2.0, measured=1.8)
        assert v.ratio == pytest.approx(0.9)

    def test_zero_paper_value(self):
        assert PaperValue("x", paper=0.0, measured=1.0).ratio == float("inf")

    def test_comparison_lines_render_all_rows(self):
        text = comparison_lines(
            [PaperValue("alpha", 1.0, 1.1), PaperValue("beta", 2.0, 1.9, "s")],
            "Demo",
        )
        assert "Demo" in text
        assert "alpha" in text and "beta" in text
        assert "1.10x" in text


class TestCaching:
    def test_sequence_cached_by_config(self):
        cfg = BenchConfig(scale=0.05, num_ranks=2, num_steps=1)
        a = sequence_for(cfg)
        b = sequence_for(cfg)
        assert a is b  # same object: the physics ran once

    def test_rates_cached(self):
        a = cached_rates(0.05, 2, 1)
        b = cached_rates(0.05, 2, 1)
        assert a is b
