"""Stage metadata, speedup arithmetic, the live pipeline, projection."""

import math

import numpy as np
import pytest

from repro.optim.pipeline import (
    OPTIMIZATION_SEQUENCE,
    run_optimization_sequence,
    run_stage,
)
from repro.optim.projection import (
    WorkRates,
    domain_activity_census,
    project_run,
)
from repro.optim.speedup import SpeedupRow, format_speedup_table, speedup_table
from repro.optim.stages import STAGE_SPECS, Stage
from repro.wrf.namelist import conus12km_namelist


class TestStages:
    def test_four_stages_in_order(self):
        assert OPTIMIZATION_SEQUENCE == (
            Stage.BASELINE,
            Stage.LOOKUP,
            Stage.OFFLOAD_COLLAPSE2,
            Stage.OFFLOAD_COLLAPSE3,
        )

    def test_gpu_flags(self):
        assert not Stage.BASELINE.uses_gpu
        assert not Stage.LOOKUP.uses_gpu
        assert Stage.OFFLOAD_COLLAPSE2.uses_gpu
        assert Stage.OFFLOAD_COLLAPSE3.uses_gpu

    def test_on_demand_flags(self):
        assert not Stage.BASELINE.on_demand_kernels
        assert all(
            s.on_demand_kernels for s in OPTIMIZATION_SEQUENCE[1:]
        )

    def test_spec_properties_follow_the_paper(self):
        s2 = STAGE_SPECS[Stage.OFFLOAD_COLLAPSE2]
        s3 = STAGE_SPECS[Stage.OFFLOAD_COLLAPSE3]
        assert s2.collapse == 2 and s2.automatic_arrays
        assert s3.collapse == 3 and not s3.automatic_arrays and s3.pointer_based


class TestSpeedupRows:
    def test_current_and_cumulative(self):
        row = SpeedupRow(
            name="fast_sbm",
            previous_seconds=2.0,
            current_seconds=1.0,
            first_seconds=4.0,
        )
        assert row.current_speedup == 2.0
        assert row.cumulative_speedup == 4.0

    def test_table_builder(self):
        rows = speedup_table(
            ["a"], previous={"a": 2.0}, current={"a": 1.0}, first={"a": 8.0}
        )
        assert rows[0].cumulative_speedup == 8.0

    def test_format(self):
        rows = [
            SpeedupRow("fast_sbm", 2.0, 1.0, 4.0),
            SpeedupRow("Overall", 1.5, 1.0, 3.0),
        ]
        text = format_speedup_table(rows, "Table X")
        assert "Table X" in text
        assert "2.00x" in text and "4.00x" in text


@pytest.fixture(scope="module")
def tiny_sequence():
    nl = conus12km_namelist(scale=0.06, num_ranks=2)
    return run_optimization_sequence(nl, num_steps=2)


class TestPipeline:
    def test_every_stage_timed(self, tiny_sequence):
        assert set(tiny_sequence.timings) == set(OPTIMIZATION_SEQUENCE)
        for t in tiny_sequence.timings.values():
            assert t.overall > 0
            assert t.fast_sbm > 0
            assert t.coal_loop >= 0

    def test_monotone_improvement_through_the_stages(self, tiny_sequence):
        """Each optimization reduces whole-program time — the paper's
        staircase."""
        seq = [tiny_sequence.timings[s].overall for s in OPTIMIZATION_SEQUENCE]
        assert seq[0] > seq[1] > seq[2] >= seq[3] * 0.999

    def test_collision_loop_dominates_speedup(self, tiny_sequence):
        coal = [tiny_sequence.timings[s].coal_loop for s in OPTIMIZATION_SEQUENCE]
        assert coal[1] < coal[0]  # lookup
        assert coal[2] < coal[1] / 2  # offload
        assert coal[3] < coal[2]  # full collapse

    def test_table_rows_have_paper_names(self, tiny_sequence):
        assert [r.name for r in tiny_sequence.table3()] == ["fast_sbm", "Overall"]
        assert [r.name for r in tiny_sequence.table4()] == [
            "coal_bott_new loop",
            "fast_sbm",
            "Overall",
        ]

    def test_run_stage_returns_result_and_timings(self):
        nl = conus12km_namelist(scale=0.06, num_ranks=2)
        result, timings = run_stage(nl, Stage.BASELINE, num_steps=1)
        assert result.steps_run == 1
        assert timings.stage is Stage.BASELINE


@pytest.fixture(scope="module")
def rates():
    return WorkRates.measure(scale=0.06, num_ranks=2, num_steps=2)


class TestProjection:
    def test_rates_are_positive(self, rates):
        assert rates.pair_entries_per_coal_cell > 0
        assert rates.ondemand_entries_per_coal_cell > 0
        assert rates.cond_updates_per_mp_cell > 0
        assert rates.coal_growth > 0

    def test_census_covers_every_rank(self):
        nl = conus12km_namelist(scale=0.5, num_ranks=8)
        census = domain_activity_census(nl)
        assert len(census) == 8
        assert sum(census) > 0
        assert max(census) > min(census)  # imbalance exists

    def test_census_total_independent_of_decomposition(self):
        base = conus12km_namelist(scale=0.5, num_ranks=4)
        other = conus12km_namelist(scale=0.5, num_ranks=16)
        assert sum(domain_activity_census(base)) == sum(
            domain_activity_census(other)
        )

    def test_projected_speedup_in_paper_band(self, rates):
        """16 ranks, 16 GPUs: total speedup ~2x (paper: 2.08x)."""
        base = project_run(
            conus12km_namelist(num_ranks=16, stage=Stage.BASELINE), rates
        )
        gpu = project_run(
            conus12km_namelist(
                num_ranks=16, stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=16
            ),
            rates,
        )
        assert not base.failed and not gpu.failed
        speedup = base.total_seconds / gpu.total_seconds
        assert 1.5 < speedup < 3.0

    def test_six_ranks_per_gpu_hits_device_oom(self, rates):
        """Sec. VII-A: beyond 5 ranks/GPU the job cannot even start."""
        pr = project_run(
            conus12km_namelist(
                num_ranks=48, stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=8
            ),
            rates,
        )
        assert pr.failed
        assert "CudaOutOfMemory" in pr.error
        assert math.isnan(pr.total_seconds)

    def test_five_ranks_per_gpu_runs(self, rates):
        pr = project_run(
            conus12km_namelist(
                num_ranks=40, stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=8
            ),
            rates,
        )
        assert not pr.failed

    def test_cpu_scaling_imperfect_due_to_imbalance(self, rates):
        t16 = project_run(
            conus12km_namelist(num_ranks=16, stage=Stage.BASELINE), rates
        ).total_seconds
        t64 = project_run(
            conus12km_namelist(num_ranks=64, stage=Stage.BASELINE), rates
        ).total_seconds
        assert t64 < t16  # more ranks help...
        assert t64 > t16 / 4  # ...but sublinearly (imbalance + noise)
