"""Cross-validation: the projection census vs the live model's activity.

Fig. 4's projection rests on the per-patch activity census being an
accurate stand-in for what the live model actually does. This test runs
both on the same configuration and requires them to agree.
"""

import numpy as np
import pytest

from repro.optim.projection import domain_activity_census
from repro.optim.stages import Stage
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


@pytest.fixture(scope="module")
def config():
    nl = conus12km_namelist(scale=0.1, num_ranks=4, stage=Stage.LOOKUP)
    model = WrfModel(nl)
    result = model.run(num_steps=1)
    return nl, model, result


def test_census_matches_first_step_coal_points(config):
    """Per-rank collision-eligible counts: census vs the live step."""
    nl, _, result = config
    census = domain_activity_census(nl)
    live = [t.sbm_stats for t in result.step_timings][0]
    live_coal = [s.coal_points for s in live]
    for rank, (expected, actual) in enumerate(zip(census, live_coal)):
        # The census is the IC count; one live step adds nucleation and
        # advection drift — agreement within a factor of two per patch.
        assert actual == pytest.approx(expected, rel=1.0), (
            f"rank {rank}: census {expected} vs live {actual}"
        )


def test_census_ranks_the_same_hot_patch(config):
    """The busiest patch must be the same in both views (the critical
    rank drives the BSP elapsed time)."""
    nl, _, result = config
    census = domain_activity_census(nl)
    live = [s.coal_points for s in result.step_timings[0].sbm_stats]
    assert int(np.argmax(census)) == int(np.argmax(live))


def test_census_total_close_to_live_total(config):
    nl, _, result = config
    census_total = sum(domain_activity_census(nl))
    live_total = sum(s.coal_points for s in result.step_timings[0].sbm_stats)
    assert live_total == pytest.approx(census_total, rel=0.5)
