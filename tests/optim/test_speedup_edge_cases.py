"""Speedup arithmetic edge cases."""

import pytest

from repro.optim.speedup import SpeedupRow, format_speedup_table


def test_zero_current_seconds_reports_infinite():
    row = SpeedupRow("x", previous_seconds=1.0, current_seconds=0.0, first_seconds=2.0)
    assert row.current_speedup == float("inf")
    assert row.cumulative_speedup == float("inf")


def test_slowdown_reported_below_one():
    """Table VII's 2-node row is a 0.956x 'speedup' — the format must
    carry slowdowns faithfully."""
    row = SpeedupRow("2 nodes", 379.8, 397.1, 379.8)
    assert row.current_speedup == pytest.approx(0.956, abs=1e-3)
    text = format_speedup_table([row])
    assert "0.96x" in text


def test_empty_table_renders_header_only():
    text = format_speedup_table([], "Empty")
    assert "Empty" in text
    assert "Current speedup" in text


def test_identity_speedup():
    row = SpeedupRow("x", 5.0, 5.0, 5.0)
    assert row.current_speedup == 1.0
    assert row.cumulative_speedup == 1.0
