"""The static verify gate in front of the optimization pipeline."""

import dataclasses

import pytest

from repro.codee.fparser import parse_source
from repro.codee.verifier import (
    CHECK_STACK,
    VerifierConfig,
    _automatic_frame_bytes,
)
from repro.core.env import PAPER_ENV, OffloadEnv
from repro.errors import StageVerificationError
from repro.fsbm import temp_arrays
from repro.optim.pipeline import run_optimization_sequence, run_stage
from repro.optim.stages import STAGE_SPECS, Stage
from repro.optim.verify_gate import stage_offload_source, verify_stage
from repro.wrf.namelist import conus12km_namelist


def collapse3_with_automatic_arrays():
    """The paper's first (failed) collapse(3) attempt, as a StageSpec."""
    return dataclasses.replace(
        STAGE_SPECS[Stage.OFFLOAD_COLLAPSE3],
        automatic_arrays=True,
        pointer_based=False,
    )


class TestStageSources:
    def test_cpu_stages_have_no_offload_source(self):
        assert stage_offload_source(STAGE_SPECS[Stage.BASELINE]) is None
        assert stage_offload_source(STAGE_SPECS[Stage.LOOKUP]) is None

    def test_gpu_stage_sources_parse_and_carry_the_collapse_level(self):
        for stage in (Stage.OFFLOAD_COLLAPSE2, Stage.OFFLOAD_COLLAPSE3):
            spec = STAGE_SPECS[stage]
            text = stage_offload_source(spec)
            parse_source(text, f"{stage.value}.f90")
            assert f"collapse({spec.collapse})" in text

    def test_pointer_stage_uses_temp_arrays_not_automatics(self):
        text = stage_offload_source(STAGE_SPECS[Stage.OFFLOAD_COLLAPSE3])
        assert "fl1_temp" in text
        assert "target enter data" in text and "target exit data" in text


class TestVerifyStage:
    def test_registered_sequence_is_clean_under_paper_env(self):
        for stage in Stage:
            assert verify_stage(stage, env=PAPER_ENV) == []

    def test_collapse2_with_automatics_clean_even_under_bare_env(self):
        """Sec. VI-B: collapse(2) ran fine before the stack fix."""
        assert verify_stage(Stage.OFFLOAD_COLLAPSE2, env=OffloadEnv()) == []

    def test_collapse3_with_automatics_trips_the_stack_checker(self):
        """Sec. VI-B/C: the configuration that crashed at runtime is
        refused statically."""
        violations = verify_stage(
            Stage.OFFLOAD_COLLAPSE3,
            env=OffloadEnv(),
            spec=collapse3_with_automatic_arrays(),
        )
        assert [v.check_id for v in violations] == [CHECK_STACK]
        assert "collapse(3)" in violations[0].detail

    def test_raised_stacksize_also_clears_it(self):
        """The paper's actual fix: NV_ACC_CUDA_STACKSIZE=64KB."""
        violations = verify_stage(
            Stage.OFFLOAD_COLLAPSE3,
            env=PAPER_ENV,
            spec=collapse3_with_automatic_arrays(),
        )
        assert violations == []

    def test_static_frame_estimate_matches_runtime_model(self):
        """The verifier's byte count for coal_bott_new's automatic
        arrays equals the runtime engine's accounting."""
        text = stage_offload_source(collapse3_with_automatic_arrays())
        sf = parse_source(text, "stage.f90")
        routines = {
            r.name.lower(): r
            for m in sf.modules
            for r in m.routines
        }
        routines.update({r.name.lower(): r for r in sf.routines})
        frame = _automatic_frame_bytes(routines["coal_bott_new"], {})
        assert frame == temp_arrays.automatic_frame_bytes()


class TestPipelineGate:
    def test_run_stage_raises_on_gate_violation(self):
        nl = conus12km_namelist(scale=0.06, num_ranks=2)
        with pytest.raises(StageVerificationError) as err:
            run_stage(
                nl,
                Stage.OFFLOAD_COLLAPSE3,
                num_steps=1,
                verify=True,
                verify_env=OffloadEnv(),
                stage_spec=collapse3_with_automatic_arrays(),
            )
        assert err.value.stage is Stage.OFFLOAD_COLLAPSE3
        assert [v.check_id for v in err.value.violations] == [CHECK_STACK]
        assert "failed static verification" in str(err.value)

    def test_sequence_halts_at_refused_stage_keeping_earlier_timings(self):
        nl = conus12km_namelist(scale=0.06, num_ranks=2)
        run = run_optimization_sequence(
            nl,
            num_steps=1,
            verify=True,
            verify_env=OffloadEnv(),
            stage_specs={
                Stage.OFFLOAD_COLLAPSE3: collapse3_with_automatic_arrays()
            },
        )
        assert run.halted_at is Stage.OFFLOAD_COLLAPSE3
        assert [v.check_id for v in run.gate_violations] == [CHECK_STACK]
        assert set(run.timings) == {
            Stage.BASELINE,
            Stage.LOOKUP,
            Stage.OFFLOAD_COLLAPSE2,
        }

    def test_verified_sequence_completes_when_specs_are_sound(self):
        nl = conus12km_namelist(scale=0.06, num_ranks=2)
        run = run_optimization_sequence(nl, num_steps=1, verify=True)
        assert run.halted_at is None
        assert len(run.timings) == 4
