"""Halo-exchange plan correctness: a full exchange reproduces the
global field in every rank's memory region."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.decomposition import decompose_domain
from repro.grid.domain import DomainSpec
from repro.grid.halo import build_halo_plan


def _global_field(domain: DomainSpec, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(domain.nx, domain.nz, domain.ny))


def _scatter(domain, dec, global_field):
    """Fill each rank's local array with its OWNED values only."""
    fields = []
    for p in dec.patches:
        local = np.full(p.shape, np.nan)
        own = (
            p.i.to_slice(p.im.start),
            slice(None),
            p.j.to_slice(p.jm.start),
        )
        local[own] = global_field[p.i.to_slice(1), :, p.j.to_slice(1)]
        fields.append(local)
    return fields


@given(
    nranks=st.sampled_from([2, 4, 6, 9]),
    halo=st.integers(1, 3),
)
@settings(max_examples=15, deadline=None)
def test_exchange_fills_halo_with_neighbor_data(nranks, halo):
    domain = DomainSpec(nx=18, nz=4, ny=15)
    dec = decompose_domain(domain, nranks, halo=halo)
    plan = build_halo_plan(dec)
    g = _global_field(domain)
    fields = _scatter(domain, dec, g)
    plan.apply(fields)
    for p, local in zip(dec.patches, fields):
        expected = g[p.im.to_slice(1), :, p.jm.to_slice(1)]
        np.testing.assert_array_equal(
            local, expected, err_msg=f"rank {p.rank} memory region wrong"
        )


def test_segments_match_between_send_and_receive_sides(small_domain):
    dec = decompose_domain(small_domain, 4)
    plan = build_halo_plan(dec)
    for seg in plan.segments:
        src_sl = seg.src_slices(dec.patches[seg.src])
        dst_sl = seg.dst_slices(dec.patches[seg.dst])
        shape_src = tuple(s.stop - s.start for s in src_sl)
        shape_dst = tuple(s.stop - s.start for s in dst_sl)
        assert shape_src == shape_dst


def test_no_self_segments(small_domain):
    dec = decompose_domain(small_domain, 4)
    plan = build_halo_plan(dec)
    assert all(seg.src != seg.dst for seg in plan.segments)


def test_single_rank_has_no_segments(small_domain):
    dec = decompose_domain(small_domain, 1)
    plan = build_halo_plan(dec)
    assert plan.segments == ()


def test_bytes_moved_scales_with_fields(small_domain):
    dec = decompose_domain(small_domain, 4)
    plan = build_halo_plan(dec)
    one = plan.bytes_moved(itemsize=4, nfields=1)
    many = plan.bytes_moved(itemsize=4, nfields=7)
    assert many == 7 * one
    assert one > 0


def test_corner_regions_included():
    """Diagonal-neighbor (corner) data must be part of the plan."""
    domain = DomainSpec(nx=12, nz=2, ny=12)
    dec = decompose_domain(domain, 4, halo=2)
    plan = build_halo_plan(dec)
    # Rank 0 (SW) must receive from rank 3 (NE): the corner block.
    assert any(s.src == 3 and s.dst == 0 for s in plan.segments)
