"""Index-space conversion helpers."""

import numpy as np

from repro.grid.decomposition import decompose_domain
from repro.grid.domain import DomainSpec
from repro.grid.indexing import (
    halo_slices,
    interior_edge_slices,
    local_slice,
    owned_slice,
    tile_slice,
)
from repro.grid.decomposition import tile_patch


def _interior_patch():
    """A patch with halo on every side (center of a 3x3 rank grid)."""
    domain = DomainSpec(nx=30, nz=4, ny=30)
    dec = decompose_domain(domain, 9, halo=2)
    return domain, dec.patches[4]


def test_owned_slice_excludes_halo():
    _, patch = _interior_patch()
    arr = np.zeros(patch.shape)
    arr[owned_slice(patch)] = 1.0
    assert arr.sum() == patch.num_points
    # Halo cells untouched.
    assert arr.sum() < arr.size


def test_local_slice_is_relative_to_memory_origin():
    _, patch = _interior_patch()
    sl = local_slice(patch, patch.i, patch.k, patch.j)
    assert sl[0].start == patch.i.start - patch.im.start
    assert sl[2].start == patch.j.start - patch.jm.start


def test_halo_slices_cover_all_non_owned_cells():
    _, patch = _interior_patch()
    arr = np.zeros(patch.shape)
    arr[owned_slice(patch)] = 1.0
    for side in ("west", "east", "south", "north"):
        arr[halo_slices(patch, side)] += 1.0
    # west/east cover full j-memory extent; south/north full i-memory
    # extent, so corners are hit twice — but nothing stays zero.
    assert (arr > 0).all()


def test_halo_slices_empty_at_domain_boundary():
    domain = DomainSpec(nx=30, nz=4, ny=30)
    dec = decompose_domain(domain, 9, halo=2)
    sw = dec.patches[0]
    empty_w = halo_slices(sw, "west")
    assert empty_w[0].stop - empty_w[0].start == 0
    empty_s = halo_slices(sw, "south")
    assert empty_s[2].stop - empty_s[2].start == 0


def test_interior_edge_strip_width():
    _, patch = _interior_patch()
    sl = interior_edge_slices(patch, "east", width=2)
    assert sl[0].stop - sl[0].start == 2


def test_tile_slices_partition_owned_region():
    _, patch = _interior_patch()
    arr = np.zeros(patch.shape)
    for tile in tile_patch(patch, 3):
        arr[tile_slice(patch, tile)] += 1.0
    owned = arr[owned_slice(patch)]
    assert (owned == 1.0).all()
