"""Decomposition invariants: exact cover, no overlap, halo clamping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.grid.decomposition import decompose_domain, factor_ranks, tile_patch
from repro.grid.domain import DomainSpec


class TestFactorRanks:
    def test_square_domain_prefers_square_grid(self):
        assert factor_ranks(16, 100, 100) == (4, 4)

    def test_wide_domain_prefers_wide_grid(self):
        px, py = factor_ranks(16, 425, 300)
        assert px >= py

    def test_prime_rank_count(self):
        px, py = factor_ranks(7, 100, 100)
        assert px * py == 7

    def test_too_many_ranks_rejected(self):
        with pytest.raises(DecompositionError):
            factor_ranks(64, 4, 4)

    def test_zero_ranks_rejected(self):
        with pytest.raises(DecompositionError):
            factor_ranks(0, 10, 10)


class TestDecomposeDomain:
    @given(
        nranks=st.sampled_from([1, 2, 4, 6, 8, 16]),
        nx=st.integers(16, 64),
        ny=st.integers(16, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_patches_cover_domain_exactly(self, nranks, nx, ny):
        domain = DomainSpec(nx=nx, nz=5, ny=ny)
        dec = decompose_domain(domain, nranks)
        cover = np.zeros((nx, ny), dtype=int)
        for p in dec.patches:
            cover[p.i.to_slice(1), p.j.to_slice(1)] += 1
        assert (cover == 1).all(), "every cell owned by exactly one rank"

    def test_vertical_never_split(self, small_domain):
        dec = decompose_domain(small_domain, 4)
        for p in dec.patches:
            assert p.k == small_domain.k

    def test_halo_clamped_at_domain_edges(self, small_domain):
        dec = decompose_domain(small_domain, 4, halo=3)
        for p in dec.patches:
            assert p.im.start >= 1 and p.im.end <= small_domain.nx
            assert p.jm.start >= 1 and p.jm.end <= small_domain.ny
            # Interior sides carry the full halo.
            if p.i.start > 1:
                assert p.i.start - p.im.start == 3
            if p.i.end < small_domain.nx:
                assert p.im.end - p.i.end == 3

    def test_rank_ordering_row_major(self, small_domain):
        dec = decompose_domain(small_domain, 4)
        for rank, p in enumerate(dec.patches):
            assert p.rank == rank
            assert rank == p.grid_j * dec.nproc_x + p.grid_i

    def test_neighbors_symmetric(self, small_domain):
        dec = decompose_domain(small_domain, 8)
        for p in dec.patches:
            nb = dec.neighbors(p.rank)
            if nb["east"] is not None:
                assert dec.neighbors(nb["east"])["west"] == p.rank
            if nb["north"] is not None:
                assert dec.neighbors(nb["north"])["south"] == p.rank

    def test_explicit_proc_grid(self, small_domain):
        dec = decompose_domain(small_domain, 8, proc_grid=(2, 4))
        assert (dec.nproc_x, dec.nproc_y) == (2, 4)
        with pytest.raises(DecompositionError):
            decompose_domain(small_domain, 8, proc_grid=(3, 2))

    def test_load_balance_within_one_row_or_column(self, small_domain):
        dec = decompose_domain(small_domain, 6)
        sizes = [p.num_points for p in dec.patches]
        # Near-equal split: max and min differ by at most one strip.
        assert max(sizes) - min(sizes) <= small_domain.nx * small_domain.nz


class TestTilePatch:
    def test_tiles_cover_patch_in_j(self, small_domain):
        dec = decompose_domain(small_domain, 2)
        patch = dec.patches[0]
        tiles = tile_patch(patch, 3)
        assert sum(t.num_points for t in tiles) == patch.num_points
        assert tiles[0].j.start == patch.j.start
        assert tiles[-1].j.end == patch.j.end

    def test_more_tiles_than_rows_collapses(self, small_domain):
        dec = decompose_domain(small_domain, 2)
        patch = dec.patches[0]
        tiles = tile_patch(patch, 10_000)
        assert len(tiles) == patch.j.size

    def test_single_tile_is_whole_patch(self, small_domain):
        dec = decompose_domain(small_domain, 2)
        patch = dec.patches[0]
        (tile,) = tile_patch(patch, 1)
        assert tile.i == patch.i and tile.j == patch.j and tile.k == patch.k
