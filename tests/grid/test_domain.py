"""Index-range and domain-spec behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.grid.domain import DEFAULT_HALO_WIDTH, DomainSpec, IndexRange, Patch


class TestIndexRange:
    def test_size_inclusive(self):
        assert IndexRange(1, 10).size == 10
        assert IndexRange(5, 5).size == 1

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexRange(5, 4)

    def test_contains_and_overlaps(self):
        outer = IndexRange(1, 100)
        inner = IndexRange(10, 20)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert inner.overlaps(IndexRange(20, 30))
        assert not inner.overlaps(IndexRange(21, 30))

    def test_intersect(self):
        assert IndexRange(1, 10).intersect(IndexRange(5, 20)) == IndexRange(5, 10)
        assert IndexRange(1, 4).intersect(IndexRange(5, 9)) is None

    def test_expand_clamped(self):
        domain = IndexRange(1, 50)
        assert IndexRange(1, 10).expand(3, clamp=domain) == IndexRange(1, 13)
        assert IndexRange(48, 50).expand(3, clamp=domain) == IndexRange(45, 50)

    def test_to_slice_round_trip(self):
        rng = IndexRange(4, 9)
        sl = rng.to_slice(base=2)
        assert sl == slice(2, 8)
        assert sl.stop - sl.start == rng.size

    @given(
        a=st.integers(1, 100),
        b=st.integers(0, 50),
        c=st.integers(1, 100),
        d=st.integers(0, 50),
    )
    def test_intersect_commutative(self, a, b, c, d):
        r1 = IndexRange(a, a + b)
        r2 = IndexRange(c, c + d)
        assert r1.intersect(r2) == r2.intersect(r1)

    @given(a=st.integers(1, 100), b=st.integers(0, 50))
    def test_intersect_with_self_is_identity(self, a, b):
        r = IndexRange(a, a + b)
        assert r.intersect(r) == r


class TestDomainSpec:
    def test_ranges_are_one_based(self, small_domain):
        assert small_domain.i == IndexRange(1, 24)
        assert small_domain.k == IndexRange(1, 10)
        assert small_domain.j == IndexRange(1, 16)
        assert small_domain.num_points == 24 * 10 * 16

    def test_invalid_extents_rejected(self):
        with pytest.raises(ConfigurationError):
            DomainSpec(nx=0, nz=10, ny=10)
        with pytest.raises(ConfigurationError):
            DomainSpec(nx=10, nz=10, ny=10, dx=-1.0)

    def test_scaled_shrinks_horizontal_only(self):
        d = DomainSpec(nx=425, nz=50, ny=300)
        s = d.scaled(0.1)
        assert s.nz == 50
        assert s.nx == round(42.5)
        assert s.ny == 30

    def test_scaled_enforces_minimum(self):
        d = DomainSpec(nx=425, nz=50, ny=300)
        s = d.scaled(0.001)
        assert s.nx >= 4 and s.ny >= 4

    def test_scale_factor_validation(self):
        d = DomainSpec(nx=10, nz=5, ny=10)
        with pytest.raises(ConfigurationError):
            d.scaled(0.0)
        with pytest.raises(ConfigurationError):
            d.scaled(1.5)


class TestPatch:
    def test_memory_must_contain_owned(self):
        with pytest.raises(ConfigurationError):
            Patch(
                rank=0,
                i=IndexRange(1, 10),
                k=IndexRange(1, 5),
                j=IndexRange(1, 10),
                im=IndexRange(2, 10),  # does not contain owned start
                jm=IndexRange(1, 10),
                halo=1,
                grid_i=0,
                grid_j=0,
            )

    def test_shape_is_memory_extents(self):
        p = Patch(
            rank=0,
            i=IndexRange(4, 9),
            k=IndexRange(1, 5),
            j=IndexRange(1, 8),
            im=IndexRange(1, 12),
            jm=IndexRange(1, 11),
            halo=3,
            grid_i=0,
            grid_j=0,
        )
        assert p.shape == (12, 5, 11)
        assert p.num_points == 6 * 5 * 8
        assert p.memory_points == 12 * 5 * 11
