"""CUDA occupancy calculator: bounds, limits, and the paper's regimes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hardware.occupancy import OccupancyCalculator
from repro.hardware.specs import A100_40GB


@pytest.fixture(scope="module")
def calc():
    return OccupancyCalculator(A100_40GB)


class TestBlocksPerSm:
    def test_low_register_kernel_is_thread_limited(self, calc):
        blocks, limiter = calc.blocks_per_sm(registers_per_thread=32, block_size=128)
        assert limiter in ("threads", "blocks")
        assert blocks == A100_40GB.max_threads_per_sm // 128

    def test_high_register_kernel_is_register_limited(self, calc):
        blocks, limiter = calc.blocks_per_sm(registers_per_thread=255, block_size=128)
        assert limiter == "registers"
        assert blocks == 2  # 65536 regs / (255*32 rounded * 4 warps)

    def test_register_cap_clamps_to_hardware_max(self, calc):
        a, _ = calc.blocks_per_sm(registers_per_thread=255, block_size=128)
        b, _ = calc.blocks_per_sm(registers_per_thread=400, block_size=128)
        assert a == b

    def test_invalid_inputs_rejected(self, calc):
        with pytest.raises(ConfigurationError):
            calc.blocks_per_sm(registers_per_thread=0, block_size=128)
        with pytest.raises(ConfigurationError):
            calc.blocks_per_sm(registers_per_thread=64, block_size=0)

    @given(regs=st.integers(16, 255), block=st.sampled_from([32, 64, 128, 256]))
    @settings(max_examples=60, deadline=None)
    def test_more_registers_never_increase_blocks(self, calc, regs, block):
        lo, _ = calc.blocks_per_sm(regs, block)
        hi, _ = calc.blocks_per_sm(min(regs + 32, 255), block)
        assert hi <= lo


class TestOccupancy:
    @given(
        regs=st.integers(16, 255),
        block=st.sampled_from([32, 64, 128, 256]),
        grid=st.integers(1, 100_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_achieved_bounded_by_theoretical_and_unity(self, calc, regs, block, grid):
        occ = calc.occupancy(regs, block, grid)
        assert 0.0 <= occ.achieved <= occ.theoretical <= 1.0

    def test_grid_starved_kernel_matches_paper_collapse2_regime(self, calc):
        """~30 blocks on 108 SMs: the paper's collapse(2) situation."""
        occ = calc.occupancy(registers_per_thread=234, block_size=128, grid_blocks=30)
        assert occ.achieved < 0.05
        assert occ.resident_threads == 30 * 128

    def test_large_grid_register_limited_matches_collapse3_regime(self, calc):
        """Large grid, ~74 registers: the paper's collapse(3) regime."""
        occ = calc.occupancy(registers_per_thread=74, block_size=128, grid_blocks=3133)
        assert 0.30 <= occ.achieved <= 0.45
        assert occ.limiter == "registers"

    def test_more_grid_blocks_never_reduce_occupancy(self, calc):
        prev = 0.0
        for grid in (1, 10, 100, 1000, 10_000):
            occ = calc.occupancy(64, 128, grid)
            assert occ.achieved >= prev
            prev = occ.achieved

    def test_zero_blocks_returns_zero_occupancy(self, calc):
        occ = calc.occupancy(64, 128, 0)
        assert occ.achieved == 0.0
        assert occ.resident_threads == 0

    def test_register_rounding_matches_allocation_granularity(self, calc):
        # 65 registers round up to 96-per-warp granularity boundaries:
        # consumption per block must be a multiple of the allocation unit.
        per_block = calc.registers_per_block(65, 128)
        assert per_block % A100_40GB.register_allocation_unit == 0
