"""Cache-hierarchy model behaviour (the Table VI mechanisms)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import AccessPattern, CacheModel, TrafficComponent
from repro.hardware.specs import A100_40GB


@pytest.fixture(scope="module")
def model():
    return CacheModel(A100_40GB)


def _component(pattern, read=1e9, write=0.5e9):
    return TrafficComponent(
        name="t", pattern=pattern, read_bytes=read, write_bytes=write
    )


class TestSequentialPattern:
    def test_few_threads_high_hit_rates(self, model):
        t = model.evaluate(
            [_component(AccessPattern.THREAD_SEQUENTIAL)],
            resident_threads=4_000,
            working_set_per_thread=5_000.0,
        )
        assert t.l1_hit_rate > 0.80
        assert t.l2_hit_rate > 0.90

    def test_many_threads_erode_hit_rates(self, model):
        few = model.evaluate(
            [_component(AccessPattern.THREAD_SEQUENTIAL)],
            resident_threads=4_000,
            working_set_per_thread=5_000.0,
        )
        many = model.evaluate(
            [_component(AccessPattern.THREAD_SEQUENTIAL)],
            resident_threads=80_000,
            working_set_per_thread=5_000.0,
        )
        assert many.l1_hit_rate < few.l1_hit_rate
        assert many.l2_hit_rate < few.l2_hit_rate
        assert many.dram_bytes > few.dram_bytes


class TestStridedPattern:
    def test_strided_amplifies_dram_traffic(self, model):
        seq = model.evaluate(
            [_component(AccessPattern.THREAD_SEQUENTIAL)],
            resident_threads=80_000,
            working_set_per_thread=5_000.0,
        )
        strided = model.evaluate(
            [_component(AccessPattern.GLOBAL_STRIDED)],
            resident_threads=80_000,
            working_set_per_thread=5_000.0,
        )
        assert strided.dram_bytes > seq.dram_bytes
        assert strided.l1_hit_rate < seq.l1_hit_rate

    def test_amplification_bounded_by_line_over_element(self, model):
        t = model.evaluate(
            [_component(AccessPattern.GLOBAL_STRIDED)],
            resident_threads=200_000,
            working_set_per_thread=5_000.0,
        )
        logical = 1.5e9
        assert t.dram_bytes <= logical * (A100_40GB.line_bytes / 4)


class TestBroadcastPattern:
    def test_shared_tables_nearly_free(self, model):
        t = model.evaluate(
            [_component(AccessPattern.BROADCAST)],
            resident_threads=80_000,
            working_set_per_thread=5_000.0,
        )
        assert t.l1_hit_rate > 0.95
        assert t.dram_bytes < 0.05 * 1.5e9


class TestAggregation:
    def test_empty_traffic(self, model):
        t = model.evaluate([], resident_threads=1000, working_set_per_thread=1.0)
        assert t.dram_bytes == 0.0
        assert t.l1_hit_rate == 1.0

    def test_hit_rates_are_rates(self, model):
        t = model.evaluate(
            [
                _component(AccessPattern.THREAD_SEQUENTIAL),
                _component(AccessPattern.GLOBAL_STRIDED),
                _component(AccessPattern.BROADCAST),
            ],
            resident_threads=50_000,
            working_set_per_thread=4_752.0,
        )
        assert 0.0 <= t.l1_hit_rate <= 1.0
        assert 0.0 <= t.l2_hit_rate <= 1.0
        assert t.dram_read_bytes >= 0 and t.dram_write_bytes >= 0

    @given(
        threads=st.integers(100, 200_000),
        ws=st.floats(100.0, 50_000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_dram_never_exceeds_amplified_logical(self, model, threads, ws):
        t = model.evaluate(
            [_component(AccessPattern.GLOBAL_STRIDED, read=1e8, write=1e8)],
            resident_threads=threads,
            working_set_per_thread=ws,
        )
        assert t.dram_bytes <= 2e8 * (A100_40GB.line_bytes / 4) * 1.001
