"""Roofline model: ceilings, ridge point, rendering."""

import pytest

from repro.hardware.roofline import RooflineModel, RooflinePoint
from repro.hardware.specs import A100_40GB


@pytest.fixture(scope="module")
def model():
    return RooflineModel(gpu=A100_40GB)


def test_memory_bound_region(model):
    low_ai = 0.1
    assert model.ceiling(low_ai) == pytest.approx(low_ai * A100_40GB.dram_bandwidth)


def test_compute_bound_region(model):
    high_ai = 1e4
    assert model.ceiling(high_ai, "fp32") == A100_40GB.peak_flops_fp32
    assert model.ceiling(high_ai, "fp64") == A100_40GB.peak_flops_fp64


def test_ridge_point_separates_regimes(model):
    ridge = model.ridge_point("fp32")
    assert model.ceiling(ridge * 0.99) < A100_40GB.peak_flops_fp32
    assert model.ceiling(ridge * 1.01) == A100_40GB.peak_flops_fp32


def test_fp64_ridge_is_lower(model):
    assert model.ridge_point("fp64") < model.ridge_point("fp32")


def test_point_properties():
    p = RooflinePoint(label="k", flops=1e9, dram_bytes=1e8, time=1e-3)
    assert p.arithmetic_intensity == pytest.approx(10.0)
    assert p.performance == pytest.approx(1e12)


def test_efficiency_below_one_for_sublinear_kernel(model):
    p = RooflinePoint(label="k", flops=1e9, dram_bytes=1e9, time=1.0)
    assert 0.0 < model.efficiency(p) < 1.0


def test_render_ascii_contains_points_and_legend(model):
    pts = [
        RooflinePoint(label="collapse(2)", flops=1e10, dram_bytes=1e8, time=0.3),
        RooflinePoint(label="collapse(3)", flops=1e10, dram_bytes=2e9, time=0.03),
    ]
    text = model.render_ascii(pts)
    assert "collapse(2)" in text and "collapse(3)" in text
    assert "=" in text  # fp32 roofline drawn
    assert "1" in text and "2" in text  # point markers


def test_zero_bytes_point_is_skipped_in_render(model):
    pts = [RooflinePoint(label="empty", flops=1e9, dram_bytes=0.0, time=1.0)]
    text = model.render_ascii(pts)
    assert "empty" in text  # legend still lists it
