"""Condensation/evaporation: growth direction, conservation, coupling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import T_0
from repro.fsbm.condensation import onecond1, onecond2
from repro.fsbm.species import Species, species_bins
from repro.fsbm.thermo import saturation_mixing_ratio
from tests.conftest import make_liquid_dists


def _thermo(npts, t=285.0, rh=1.05, p=800.0):
    temp = np.full(npts, t)
    pres = np.full(npts, p)
    qv = rh * saturation_mixing_ratio(temp, pres)
    rho = np.full(npts, 1.0e-3)
    ccn = np.full(npts, 100.0)
    return temp, pres, qv, rho, ccn


def _water_path(dists, qv, rho):
    """Total water (vapor + condensate) per point [g/cm^3]."""
    grids = species_bins()
    cond = sum(d @ grids[sp].masses for sp, d in dists.items())
    return cond + qv * rho


class TestOnecond1:
    def test_supersaturated_points_condense(self):
        dists = make_liquid_dists(8)
        temp, pres, qv, rho, ccn = _thermo(8, rh=1.05)
        qv0 = qv.copy()
        mass0 = dists[Species.LIQUID] @ species_bins()[Species.LIQUID].masses
        onecond1(dists, temp, pres, qv, rho, ccn, dt=5.0)
        mass1 = dists[Species.LIQUID] @ species_bins()[Species.LIQUID].masses
        assert (mass1 >= mass0 - 1e-18).all()
        assert (qv <= qv0).all()

    def test_subsaturated_points_evaporate(self):
        dists = make_liquid_dists(8)
        temp, pres, qv, rho, ccn = _thermo(8, rh=0.5)
        qv0 = qv.copy()
        mass0 = dists[Species.LIQUID] @ species_bins()[Species.LIQUID].masses
        onecond1(dists, temp, pres, qv, rho, ccn, dt=5.0)
        mass1 = dists[Species.LIQUID] @ species_bins()[Species.LIQUID].masses
        assert (mass1 <= mass0 + 1e-18).all()
        assert (qv >= qv0).all()

    @given(rh=st.floats(0.3, 1.3), t=st.floats(T_0 - 30.0, T_0 + 25.0))
    @settings(max_examples=30, deadline=None)
    def test_total_water_conserved(self, rh, t):
        dists = make_liquid_dists(6)
        temp, pres, qv, rho, ccn = _thermo(6, t=t, rh=rh)
        before = _water_path(dists, qv, rho)
        onecond1(dists, temp, pres, qv, rho, ccn, dt=5.0)
        after = _water_path(dists, qv, rho)
        np.testing.assert_allclose(after, before, rtol=1e-9)

    def test_latent_heat_warms_on_condensation(self):
        dists = make_liquid_dists(6)
        temp, pres, qv, rho, ccn = _thermo(6, rh=1.08)
        t0 = temp.copy()
        onecond1(dists, temp, pres, qv, rho, ccn, dt=5.0)
        assert (temp >= t0).all()
        assert temp.max() > t0.max()

    def test_growth_never_overshoots_saturation(self):
        dists = make_liquid_dists(6)
        dists[Species.LIQUID] *= 50.0
        temp, pres, qv, rho, ccn = _thermo(6, rh=1.02)
        onecond1(dists, temp, pres, qv, rho, ccn, dt=30.0)
        qs = saturation_mixing_ratio(temp, pres)
        assert (qv >= 0.95 * qs).all(), "condensation overshot below saturation"

    def test_complete_evaporation_credits_ccn(self):
        dists = {sp: np.zeros((4, 33)) for sp in Species}
        dists[Species.LIQUID][:, 0] = 10.0  # tiny droplets
        temp, pres, qv, rho, ccn = _thermo(4, rh=0.2)
        ccn0 = ccn.copy()
        onecond1(dists, temp, pres, qv, rho, ccn, dt=60.0)
        assert (ccn >= ccn0).any()

    def test_no_negative_bins(self):
        dists = make_liquid_dists(6)
        temp, pres, qv, rho, ccn = _thermo(6, rh=0.1)
        onecond1(dists, temp, pres, qv, rho, ccn, dt=60.0)
        assert (dists[Species.LIQUID] >= 0).all()


class TestOnecond2:
    def test_ice_deposition_in_mixed_phase(self):
        dists = {sp: np.zeros((6, 33)) for sp in Species}
        dists[Species.ICE_PLA][:, 5:12] = 1.0
        temp, pres, qv, rho, ccn = _thermo(6, t=T_0 - 15.0, rh=1.0)
        # Water-saturated air is ice-supersaturated: crystals grow.
        mass0 = dists[Species.ICE_PLA] @ species_bins()[Species.ICE_PLA].masses
        onecond2(dists, temp, pres, qv, rho, ccn, dt=5.0)
        mass1 = dists[Species.ICE_PLA] @ species_bins()[Species.ICE_PLA].masses
        assert mass1.sum() > mass0.sum()

    def test_bergeron_transfer_direction(self):
        """Between water and ice saturation, liquid evaporates while ice
        grows (the Wegener–Bergeron–Findeisen process)."""
        grids = species_bins()
        dists = {sp: np.zeros((6, 33)) for sp in Species}
        dists[Species.LIQUID][:, 6:10] = 2.0
        dists[Species.SNOW][:, 8:14] = 0.5
        temp = np.full(6, T_0 - 12.0)
        pres = np.full(6, 600.0)
        qs_w = saturation_mixing_ratio(temp, pres, "water")
        qs_i = saturation_mixing_ratio(temp, pres, "ice")
        qv = 0.5 * (qs_w + qs_i)  # between the two saturation curves
        rho = np.full(6, 1.0e-3)
        ccn = np.full(6, 100.0)
        liq0 = (dists[Species.LIQUID] @ grids[Species.LIQUID].masses).sum()
        snow0 = (dists[Species.SNOW] @ grids[Species.SNOW].masses).sum()
        onecond2(dists, temp, pres, qv, rho, ccn, dt=5.0)
        liq1 = (dists[Species.LIQUID] @ grids[Species.LIQUID].masses).sum()
        snow1 = (dists[Species.SNOW] @ grids[Species.SNOW].masses).sum()
        assert liq1 < liq0
        assert snow1 > snow0

    def test_work_stats_count_all_species(self):
        dists = {sp: np.zeros((6, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:10] = 1.0
        dists[Species.SNOW][:, 5:10] = 1.0
        temp, pres, qv, rho, ccn = _thermo(6, t=T_0 - 10.0)
        stats = onecond2(dists, temp, pres, qv, rho, ccn, dt=5.0)
        assert stats.bin_updates >= 2 * 6 * 33
