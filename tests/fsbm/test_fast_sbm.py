"""The fast_sbm driver: stage dispatch, equivalence, failure injection."""

import numpy as np
import pytest

from repro.constants import T_COAL_CUTOFF
from repro.core.clock import SimClock, TimeBucket
from repro.core.costmodel import CpuCostModel
from repro.core.device import Device
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV, OffloadEnv
from repro.errors import ConfigurationError, CudaStackOverflow
from repro.fsbm.fast_sbm import FastSBM
from repro.fsbm.species import Species
from repro.fsbm.state import MicroState
from repro.hardware.specs import EPYC_MILAN
from repro.optim.stages import Stage


def _setup(shape=(8, 6, 8), seed=1):
    """A patch with a storm in the middle."""
    rng = np.random.default_rng(seed)
    state = MicroState(shape=shape)
    mask = np.zeros(shape, dtype=bool)
    mask[2:6, 1:5, 2:6] = True
    state.seed_cloud(mask, lwc=1.2e-6)
    ni, nk, nj = shape
    temperature = np.broadcast_to(
        np.linspace(295.0, 240.0, nk)[None, :, None], shape
    ).copy()
    pressure = np.broadcast_to(
        np.linspace(950.0, 450.0, nk)[None, :, None], shape
    ).copy()
    from repro.fsbm.thermo import saturation_mixing_ratio

    qv = 0.95 * saturation_mixing_ratio(temperature, pressure)
    qv[mask] *= 1.12  # supersaturate the storm
    rho = np.full(shape, 1.0e-3)
    return state, temperature, pressure, qv, rho


def _sbm(stage, engine=None, clock=None, precision="fp32"):
    return FastSBM(
        stage=stage,
        dt=5.0,
        clock=clock or SimClock(),
        cpu_cost=CpuCostModel(cpu=EPYC_MILAN),
        engine=engine,
        precision=precision,
    )


def _run(stage, steps=2, env=None, seed=1, precision="fp32"):
    state, t, p, qv, rho = _setup(seed=seed)
    clock = SimClock()
    engine = None
    if stage.uses_gpu:
        engine = OffloadEngine(
            device=Device(), env=env or PAPER_ENV, clock=clock
        )
    sbm = _sbm(stage, engine=engine, clock=clock, precision=precision)
    stats = []
    for _ in range(steps):
        stats.append(sbm.step(state, t, p, qv, rho, dz_cm=50_000.0))
    return state, t, qv, clock, stats


class TestStageDispatch:
    def test_gpu_stage_requires_engine(self):
        with pytest.raises(ConfigurationError):
            _sbm(Stage.OFFLOAD_COLLAPSE2, engine=None)

    def test_step_produces_activity(self):
        _, _, _, clock, stats = _run(Stage.BASELINE)
        assert stats[-1].mp_points > 0
        assert stats[-1].coal_points > 0
        assert clock.region_total("fast_sbm") > 0
        assert clock.region_total("coal_bott_new") > 0

    def test_baseline_charges_more_coal_time_than_lookup(self):
        _, _, _, clock_b, _ = _run(Stage.BASELINE)
        _, _, _, clock_l, _ = _run(Stage.LOOKUP)
        assert (
            clock_b.region_total("coal_bott_new")
            > 2 * clock_l.region_total("coal_bott_new")
        )

    def test_gpu_stage_charges_kernel_time_not_cpu_for_coal(self):
        _, _, _, clock, stats = _run(Stage.OFFLOAD_COLLAPSE3)
        assert clock.bucket(TimeBucket.GPU_KERNEL) > 0
        assert clock.bucket(TimeBucket.H2D) > 0
        assert stats[-1].coal_record is not None
        assert stats[-1].coal_record.collapse == 3

    def test_collapse_level_follows_stage(self):
        _, _, _, _, s2 = _run(Stage.OFFLOAD_COLLAPSE2)
        _, _, _, _, s3 = _run(Stage.OFFLOAD_COLLAPSE3)
        assert s2[-1].coal_record.collapse == 2
        assert s3[-1].coal_record.collapse == 3


class TestStageEquivalence:
    """All code versions compute the same physics (Sec. VII-B)."""

    def test_baseline_and_lookup_bitwise_identical(self):
        st_b, t_b, qv_b, _, _ = _run(Stage.BASELINE)
        st_l, t_l, qv_l, _, _ = _run(Stage.LOOKUP)
        for sp in Species:
            np.testing.assert_array_equal(st_b.dists[sp], st_l.dists[sp])
        np.testing.assert_array_equal(t_b, t_l)
        np.testing.assert_array_equal(qv_b, qv_l)

    def test_gpu_stages_match_to_single_precision(self):
        """float32 collision arithmetic plus two steps of nonlinear
        feedback: results agree to a few percent, temperature much
        tighter (it is only indirectly coupled to the offloaded loop)."""
        st_b, t_b, _, _, _ = _run(Stage.BASELINE)
        st_g, t_g, _, _, _ = _run(Stage.OFFLOAD_COLLAPSE3)
        for sp in Species:
            scale = max(st_b.dists[sp].max(), 1e-12)
            np.testing.assert_allclose(
                st_g.dists[sp], st_b.dists[sp], rtol=0.05, atol=1e-4 * scale
            )
        np.testing.assert_allclose(t_g, t_b, rtol=1e-5)

    def test_gpu_results_not_bitwise_identical(self):
        st_b, _, _, _, _ = _run(Stage.BASELINE)
        st_g, _, _, _, _ = _run(Stage.OFFLOAD_COLLAPSE3)
        assert any(
            not np.array_equal(st_g.dists[sp], st_b.dists[sp]) for sp in Species
        )

    def test_fp64_device_matches_cpu_more_closely(self):
        st_b, _, _, _, _ = _run(Stage.BASELINE)
        st_g32, _, _, _, _ = _run(Stage.OFFLOAD_COLLAPSE3, precision="fp32")
        st_g64, _, _, _, _ = _run(Stage.OFFLOAD_COLLAPSE3, precision="fp64")
        err32 = max(
            np.abs(st_g32.dists[sp] - st_b.dists[sp]).max() for sp in Species
        )
        err64 = max(
            np.abs(st_g64.dists[sp] - st_b.dists[sp]).max() for sp in Species
        )
        assert err64 <= err32


class TestFailureInjection:
    def test_collapse3_with_default_stack_overflows_on_big_patch(self):
        """Stage 2's automatic arrays + collapse(3) + default env = the
        paper's CUDA stack overflow. Needs a patch big enough to fill
        the resident-thread budget."""
        state, t, p, qv, rho = _setup(shape=(40, 30, 40))
        clock = SimClock()
        engine = OffloadEngine(device=Device(), env=OffloadEnv(), clock=clock)
        sbm = _sbm(Stage.OFFLOAD_COLLAPSE2, engine=engine, clock=clock)
        # Force collapse(3) semantics on the automatic-array version by
        # running the stage-2 kernel through a stage-3-style directive:
        sbm.spec = type(sbm.spec)(
            stage=sbm.spec.stage,
            label=sbm.spec.label,
            collapse=3,
            automatic_arrays=True,
            n_scalars=30,
            n_array_vars=30,
            pointer_based=False,
        )
        with pytest.raises(CudaStackOverflow):
            sbm.step(state, t, p, qv, rho, dz_cm=50_000.0)

    def test_paper_env_unblocks_the_same_launch(self):
        state, t, p, qv, rho = _setup(shape=(40, 30, 40))
        clock = SimClock()
        engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=clock)
        sbm = _sbm(Stage.OFFLOAD_COLLAPSE2, engine=engine, clock=clock)
        sbm.spec = type(sbm.spec)(
            stage=sbm.spec.stage,
            label=sbm.spec.label,
            collapse=3,
            automatic_arrays=True,
            n_scalars=30,
            n_array_vars=30,
            pointer_based=False,
        )
        sbm.step(state, t, p, qv, rho, dz_cm=50_000.0)  # no raise


class TestWorkStats:
    def test_stage3_allocates_temp_arrays_once(self):
        state, t, p, qv, rho = _setup()
        clock = SimClock()
        engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=clock)
        sbm = _sbm(Stage.OFFLOAD_COLLAPSE3, engine=engine, clock=clock)
        sbm.step(state, t, p, qv, rho, dz_cm=50_000.0)
        footprint = engine.ctx.mapped_bytes
        sbm.step(state, t, p, qv, rho, dz_cm=50_000.0)
        assert engine.ctx.mapped_bytes == footprint  # no re-allocation

    def test_coal_gate_respects_temperature_cutoff(self):
        state, t, p, qv, rho = _setup()
        t[...] = T_COAL_CUTOFF - 10.0  # too cold for collisions
        qv[...] = 1.0e-8  # dry air: no condensation heating past the gate
        sbm = _sbm(Stage.BASELINE)
        stats = sbm.step(state, t, p, qv, rho, dz_cm=50_000.0)
        assert stats.coal_points == 0
