"""The bulk-scheme comparator: conservation, processes, cost contrast."""

import numpy as np
import pytest

from repro.constants import T_0
from repro.errors import ConfigurationError
from repro.fsbm.bulk import (
    BulkMicrophysics,
    BulkState,
    bulk_vs_bin_cost_ratio,
)
from repro.fsbm.thermo import saturation_mixing_ratio


def _env(shape=(4, 8, 4), t_surface=300.0, rh=1.1):
    state = BulkState(shape=shape)
    nk = shape[1]
    t_col = np.linspace(t_surface, t_surface - 70.0, nk)
    temperature = np.broadcast_to(t_col[None, :, None], shape).copy()
    p_col = np.linspace(950.0, 300.0, nk)
    pressure = np.broadcast_to(p_col[None, :, None], shape).copy()
    qv = rh * saturation_mixing_ratio(temperature, pressure)
    rho = np.full(shape, 1.0e-3)
    return state, temperature, pressure, qv, rho


def _total_water(state, qv, rho):
    return ((state.total_condensate + qv) * rho).sum() + state.precip.sum() / (
        50_000.0 / 100.0
    ) * 0  # precip tracked separately in the conservation test below


class TestBulkState:
    def test_fields_allocated(self):
        s = BulkState(shape=(3, 4, 5))
        assert s.qc.shape == (3, 4, 5)
        assert s.precip.shape == (3, 5)

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            BulkState(shape=(0, 1, 1))


class TestProcesses:
    def test_supersaturation_condenses_cloud_water(self):
        state, t, p, qv, rho = _env(rh=1.2)
        BulkMicrophysics(dt=5.0).step(state, t, p, qv, rho, 50_000.0)
        assert state.qc.sum() > 0

    def test_autoconversion_needs_threshold(self):
        state, t, p, qv, rho = _env(rh=0.8)
        state.qc[...] = 0.1e-3  # below threshold
        BulkMicrophysics(dt=5.0).step(state, t, p, qv, rho, 50_000.0)
        assert state.qr.sum() == pytest.approx(0.0, abs=1e-12)

    def test_heavy_cloud_makes_rain_and_precip(self):
        state, t, p, qv, rho = _env(rh=1.0)
        state.qc[...] = 3.0e-3
        mp = BulkMicrophysics(dt=5.0)
        for _ in range(40):
            mp.step(state, t, p, qv, rho, 50_000.0)
        assert state.qr.sum() > 0
        assert state.precip.sum() > 0

    def test_cold_cloud_builds_ice_chain(self):
        state, t, p, qv, rho = _env(t_surface=268.0, rh=1.05)
        state.qc[...] = 1.0e-3
        mp = BulkMicrophysics(dt=5.0)
        for _ in range(10):
            mp.step(state, t, p, qv, rho, 50_000.0)
        assert state.qi.sum() + state.qs.sum() > 0
        assert state.qg.sum() > 0  # riming happened

    def test_everything_melts_in_warm_column(self):
        state, t, p, qv, rho = _env(t_surface=310.0, rh=0.5)
        t[...] = T_0 + 10.0
        state.qs[...] = 1.0e-3
        initial = state.qs.sum()
        mp = BulkMicrophysics(dt=5.0)
        for _ in range(200):
            mp.step(state, t, p, qv, rho, 50_000.0)
        # 1000 s at a ~120 s melting timescale: >99.9% gone.
        assert state.qs.sum() < 1e-3 * initial

    def test_no_negative_mixing_ratios(self):
        state, t, p, qv, rho = _env(rh=0.4)
        state.qc[...] = 2.0e-3
        mp = BulkMicrophysics(dt=5.0)
        for _ in range(30):
            mp.step(state, t, p, qv, rho, 50_000.0)
        for name in ("qc", "qr", "qi", "qs", "qg"):
            assert getattr(state, name).min() >= 0.0, name


class TestCostContrast:
    def test_bin_scheme_orders_of_magnitude_dearer(self):
        """The paper's motivation: bin collision work is O(b^2)."""
        ratio = bulk_vs_bin_cost_ratio()
        assert ratio > 100.0

    def test_ratio_grows_quadratically_with_bins(self):
        assert bulk_vs_bin_cost_ratio(nkr=66) == pytest.approx(
            4.0 * bulk_vs_bin_cost_ratio(nkr=33)
        )

    def test_bulk_step_stats(self):
        state, t, p, qv, rho = _env()
        stats = BulkMicrophysics(dt=5.0).step(state, t, p, qv, rho, 50_000.0)
        assert stats.cells == 4 * 8 * 4
        assert stats.flops > 0
