"""MicroState container behaviour: moments, views, seeding."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fsbm.species import Species, species_bins
from repro.fsbm.state import MicroState, N_EPS


def test_all_species_allocated():
    s = MicroState(shape=(3, 4, 5))
    assert set(s.dists) == set(Species)
    for d in s.dists.values():
        assert d.shape == (3, 4, 5, 33)


def test_invalid_shape_rejected():
    with pytest.raises(ConfigurationError):
        MicroState(shape=(3, 4))  # type: ignore[arg-type]
    with pytest.raises(ConfigurationError):
        MicroState(shape=(0, 4, 5))


def test_moments():
    s = MicroState(shape=(2, 2, 2))
    s.dists[Species.LIQUID][..., 5] = 3.0
    grids = species_bins()
    np.testing.assert_allclose(s.number(Species.LIQUID), 3.0)
    np.testing.assert_allclose(
        s.mass(Species.LIQUID), 3.0 * grids[Species.LIQUID].masses[5]
    )
    np.testing.assert_allclose(
        s.total_condensate_mass(), 3.0 * grids[Species.LIQUID].masses[5]
    )


def test_occupied_bins():
    s = MicroState(shape=(1, 1, 2))
    s.dists[Species.SNOW][0, 0, 0, 7] = 1.0
    s.dists[Species.SNOW][0, 0, 1, 12] = 1.0
    occ = s.occupied_bins(Species.SNOW)
    assert occ[0, 0, 0] == 8
    assert occ[0, 0, 1] == 13
    assert s.occupied_bins(Species.HAIL).max() == 0


def test_copy_is_deep():
    s = MicroState(shape=(2, 2, 2))
    c = s.copy()
    c.dists[Species.LIQUID][...] = 1.0
    assert s.dists[Species.LIQUID].sum() == 0.0


def test_view_shares_memory():
    s = MicroState(shape=(6, 4, 6))
    v = s.view((slice(1, 4), slice(None), slice(2, 5)))
    assert v.shape == (3, 4, 3)
    v.dists[Species.LIQUID][..., 3] = 2.0
    assert s.dists[Species.LIQUID][1:4, :, 2:5, 3].sum() == 2.0 * 3 * 4 * 3
    v.precip += 1.0
    assert s.precip[1:4, 2:5].sum() == 9.0
    assert s.precip[0, 0] == 0.0


def test_clip_negatives_returns_removed_mass():
    s = MicroState(shape=(2, 2, 2))
    grids = species_bins()
    s.dists[Species.LIQUID][0, 0, 0, 4] = -2.0
    removed = s.clip_negatives()
    assert removed == pytest.approx(2.0 * grids[Species.LIQUID].masses[4])
    assert (s.dists[Species.LIQUID] >= 0).all()


def test_seed_cloud_hits_target_lwc():
    s = MicroState(shape=(3, 3, 3))
    mask = np.zeros((3, 3, 3), dtype=bool)
    mask[1, 1, 1] = True
    s.seed_cloud(mask, lwc=1.0e-6)
    assert s.mass(Species.LIQUID)[1, 1, 1] == pytest.approx(1.0e-6)
    assert s.mass(Species.LIQUID)[0, 0, 0] == 0.0
