"""The 20-interaction registry and its temperature gating."""

import numpy as np

from repro.constants import T_0
from repro.fsbm.species import (
    ICE_HABITS,
    INTERACTIONS,
    INTERACTIONS_BY_NAME,
    Species,
    interactions_for_regime,
    species_bins,
)


def test_exactly_twenty_interactions():
    assert len(INTERACTIONS) == 20


def test_names_follow_cw_convention():
    assert "cwll" in INTERACTIONS_BY_NAME
    assert "cwlg" in INTERACTIONS_BY_NAME
    assert "cwgl" in INTERACTIONS_BY_NAME
    assert all(name.startswith("cw") for name in INTERACTIONS_BY_NAME)


def test_warm_regime_is_liquid_only():
    warm = interactions_for_regime(T_0 + 10.0)
    assert [ix.name for ix in warm] == ["cwll"]


def test_mixed_phase_regime_adds_riming():
    mixed = interactions_for_regime(T_0 - 8.0)
    names = {ix.name for ix in mixed}
    assert {"cwll", "cwls", "cwlg", "cwlh", "cwgl"} <= names
    assert len(mixed) > 5


def test_cold_regime_has_all_twenty():
    cold = interactions_for_regime(T_0 - 30.0)
    assert len(cold) == 20


def test_regime_subset_is_the_stage1_saving():
    """The lookup optimization evaluates fewer tables at warm points."""
    warm = interactions_for_regime(T_0 + 5.0)
    cold = interactions_for_regime(T_0 - 30.0)
    assert len(warm) < len(cold)


def test_active_at_array_matches_scalar():
    ix = INTERACTIONS_BY_NAME["cwss"]
    temps = np.array([300.0, 270.0, 260.0, 220.0])
    vec = ix.active_at_array(temps)
    scalar = np.array([ix.active_at(float(t)) for t in temps])
    np.testing.assert_array_equal(vec, scalar)


def test_self_collection_flag():
    assert INTERACTIONS_BY_NAME["cwll"].self_collection
    assert not INTERACTIONS_BY_NAME["cwlg"].self_collection


def test_products_are_valid_species():
    for ix in INTERACTIONS:
        assert isinstance(ix.product, Species)


def test_species_bins_cover_every_species():
    bins = species_bins()
    assert set(bins) == set(Species)
    # Snow is the fluffiest, hail/liquid the densest.
    assert bins[Species.SNOW].density < bins[Species.GRAUPEL].density
    assert bins[Species.HAIL].density <= bins[Species.LIQUID].density


def test_ice_habits_tuple():
    assert len(ICE_HABITS) == 3
    assert all(sp.is_ice for sp in ICE_HABITS)
    assert not Species.LIQUID.is_ice
