"""The temp_arrays module: frame size and device footprint."""

import pytest

from repro.core.clock import SimClock
from repro.core.device import Device
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV
from repro.errors import CudaOutOfMemory
from repro.fsbm.temp_arrays import (
    AUTOMATIC_ARRAYS,
    TempArrays,
    automatic_frame_bytes,
    per_point_temp_bytes,
)


def test_registry_matches_listing7_structure():
    names = [n for n, _ in AUTOMATIC_ARRAYS]
    assert "fl1" in names and "g1" in names and "g2" in names
    assert len(names) == len(set(names))
    g2 = dict(AUTOMATIC_ARRAYS)["g2"]
    assert g2 == (33, 3)  # (nkr, icemax)


def test_frame_bytes_in_the_multi_kilobyte_range():
    """The frame must exceed nvfortran's default stack but fit the
    paper's 65536-byte setting — that is the whole Sec. VI-C story."""
    frame = automatic_frame_bytes()
    assert 2048 < frame < 65536
    assert frame == sum(
        4 * (s[0] if len(s) == 1 else s[0] * s[1]) for _, s in AUTOMATIC_ARRAYS
    )


def test_temp_arrays_footprint_scales_with_patch():
    small = TempArrays((10, 10, 10))
    large = TempArrays((20, 10, 10))
    assert large.total_bytes() == 2 * small.total_bytes()
    assert small.total_bytes() == per_point_temp_bytes() * 1000


def test_allocation_through_engine():
    engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
    ta = TempArrays((8, 5, 6))
    ta.allocate(engine)
    assert ta.allocated
    assert "fl1_temp" in engine.ctx.arrays
    assert engine.ctx.arrays["fl1_temp"].shape == (33, 8, 5, 6)
    assert engine.ctx.arrays["g2_temp"].shape == (33, 3, 8, 5, 6)
    ta.release(engine)
    assert "fl1_temp" not in engine.ctx.arrays


def test_allocation_idempotent():
    engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
    ta = TempArrays((4, 4, 4))
    ta.allocate(engine)
    ta.allocate(engine)  # no double-mapping error


def test_two_node_patches_admit_five_ranks_per_gpu_not_six():
    """Sec. VII-A: at the 2-node configuration (40 ranks over 8 GPUs,
    so ~53 x 50 x 60 patches), each rank costs ~0.76 GB of temp arrays
    plus a ~7.2 GB stack reservation — five contexts fit a 40 GB A100
    and the sixth raises the CUDA out-of-memory the paper hit."""
    device = Device()
    engines = []
    try:
        with pytest.raises(CudaOutOfMemory):
            for _ in range(6):
                eng = OffloadEngine(device=device, env=PAPER_ENV, clock=SimClock())
                engines.append(eng)
                TempArrays((53, 50, 60)).allocate(eng)
        assert len(device.contexts) == 5
    finally:
        for eng in engines:
            eng.close()


def test_enter_data_directive_text():
    ta = TempArrays((4, 4, 4))
    text = ta.enter_data_directive().render()
    assert text.startswith("!$omp target enter data map(alloc:")
    assert "fl1_temp" in text
