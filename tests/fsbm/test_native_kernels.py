"""Compiled physics kernels vs their numpy references.

The contract of :mod:`repro.fsbm.ckernels` (see its module docstring):
the fused sedimentation sweep and the KO-remap scatter are **bit
identical** to the numpy paths; the batched collision engine agrees to
the ~1e-12 level (its fused GEMM inner dimension reorders the pressure
interpolation); every compiled path degrades to numpy under
``REPRO_DISABLE_CPHYS``.
"""

import numpy as np
import pytest

from repro.fsbm import ckernels
from repro.fsbm.coal_bott import (
    CoalWorkspace,
    coal_bott_step,
    get_coal_workspace,
)
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.condensation import _remap_spectrum
from repro.fsbm.sedimentation import _courant_tables, sedimentation_step
from repro.fsbm.species import INTERACTIONS, Species, species_bins
from repro.fsbm.state import MicroState
from tests.conftest import make_liquid_dists, total_mass

NKR = 33
SPLIST = list(Species)


def test_kernels_compile_in_ci():
    """The compiled path must actually be exercised by this suite."""
    assert ckernels.load_kernels() is not None, ckernels.load_error


# --- sedimentation -----------------------------------------------------------


def _superblock_state(shape=(4, 6, 5), seed=0, species=None):
    """A MicroState whose dists are strided views into one superblock,
    exactly the layout :meth:`repro.wrf.state.WrfFields.bind_block`
    produces (bin axis unit-stride, shared element strides)."""
    ni, nk, nj = shape
    block = np.zeros((ni, nk, nj, len(SPLIST) * NKR))
    dists = {
        sp: block[..., isp * NKR : (isp + 1) * NKR]
        for isp, sp in enumerate(SPLIST)
    }
    rng = np.random.default_rng(seed)
    for sp in species or (Species.LIQUID, Species.SNOW, Species.GRAUPEL):
        mask = rng.random((ni, nk, nj)) < 0.5
        dists[sp][mask] = rng.uniform(0.0, 5.0, (int(mask.sum()), NKR))
    return MicroState(shape=shape, dists=dists)


P_LEVELS = np.linspace(1000.0, 400.0, 6)


class TestSedimentation:
    def test_native_bitwise_matches_numpy_on_superblock_views(self):
        state = _superblock_state()
        ref = state.copy()  # contiguous copy -> numpy path workload
        stats_nat = sedimentation_step(state, P_LEVELS, 50_000.0, 5.0)
        stats_ref = sedimentation_step(
            ref, P_LEVELS, 50_000.0, 5.0, native=False
        )
        for sp in SPLIST:
            np.testing.assert_array_equal(
                state.dists[sp], ref.dists[sp], err_msg=str(sp)
            )
        # Only the precip dot product accumulates in a different order.
        np.testing.assert_allclose(state.precip, ref.precip, rtol=1e-12)
        assert stats_nat.cell_bins == stats_ref.cell_bins > 0

    def test_multi_step_stays_bitwise(self):
        state = _superblock_state(seed=7)
        ref = state.copy()
        for _ in range(4):
            sedimentation_step(state, P_LEVELS, 50_000.0, 5.0)
            sedimentation_step(ref, P_LEVELS, 50_000.0, 5.0, native=False)
        for sp in SPLIST:
            np.testing.assert_array_equal(state.dists[sp], ref.dists[sp])

    def test_cfl_violation_raises_when_species_present(self):
        state = _superblock_state(species=(Species.HAIL,))
        tables = _courant_tables(P_LEVELS, 50_000.0, 15.0)
        assert tables["cmax"][Species.HAIL] > 1.0  # dt=15 breaks hail
        with pytest.raises(AssertionError, match="CFL violated"):
            sedimentation_step(state, P_LEVELS, 50_000.0, 15.0)

    @pytest.mark.parametrize("native", [True, False])
    def test_cfl_violation_ignored_for_absent_species(self, native):
        # Hail violates CFL at dt=15 but is absent; liquid is present
        # and stable, so the step must run on both paths.
        state = _superblock_state(species=(Species.LIQUID,))
        ref = state.copy()
        sedimentation_step(state, P_LEVELS, 50_000.0, 15.0, native=native)
        assert not np.array_equal(
            state.dists[Species.LIQUID], ref.dists[Species.LIQUID]
        )

    def test_courant_tables_are_cached(self):
        a = _courant_tables(P_LEVELS, 50_000.0, 5.0)
        b = _courant_tables(P_LEVELS.copy(), 50_000.0, 5.0)
        assert a is b  # CountingCache hit, not a rebuild
        assert _courant_tables(P_LEVELS, 50_000.0, 2.5) is not a

    def test_mass_conserved_including_precip(self):
        state = _superblock_state(seed=3)
        grids = species_bins()
        before = sum(
            float((state.dists[sp].reshape(-1, NKR) @ grids[sp].masses).sum())
            for sp in SPLIST
        )
        sedimentation_step(state, P_LEVELS, 50_000.0, 5.0)
        after = sum(
            float((state.dists[sp].reshape(-1, NKR) @ grids[sp].masses).sum())
            for sp in SPLIST
        )
        assert after + state.precip.sum() == pytest.approx(before, rel=1e-10)

    def test_disable_env_forces_numpy_path(self, monkeypatch):
        monkeypatch.setenv(ckernels.DISABLE_ENV, "1")
        assert ckernels.load_kernels() is None
        assert ckernels.DISABLE_ENV in ckernels.load_error
        state = _superblock_state()
        ref = state.copy()
        # native=True now silently takes the numpy reference path.
        sedimentation_step(state, P_LEVELS, 50_000.0, 5.0, native=True)
        sedimentation_step(ref, P_LEVELS, 50_000.0, 5.0, native=False)
        for sp in SPLIST:
            np.testing.assert_array_equal(state.dists[sp], ref.dists[sp])
        np.testing.assert_array_equal(state.precip, ref.precip)


# --- condensation KO-remap ---------------------------------------------------


class TestRemapScatter:
    def _workload(self, npts=32, seed=11):
        grid = species_bins()[Species.LIQUID]
        rng = np.random.default_rng(seed)
        n = rng.uniform(0.0, 3.0, (npts, NKR))
        factor = rng.uniform(0.45, 2.2, (npts, 1))
        return grid, n, grid.masses[None, :] * factor

    def test_native_bitwise_matches_bincount(self):
        grid, n, new_mass = self._workload()
        n_nat, e_nat = _remap_spectrum(n, new_mass, grid)
        n_ref, e_ref = _remap_spectrum(n, new_mass, grid, native=False)
        np.testing.assert_array_equal(n_nat, n_ref)
        np.testing.assert_array_equal(e_nat, e_ref)
        assert e_nat.sum() > 0  # the 0.45x tail does evaporate particles

    def test_evaporation_boundary_is_strict(self):
        """The evaporation cut is ``new_mass < 0.5 * x[0]``: a particle
        exactly at half the smallest bin mass survives; one ULP below
        evaporates."""
        grid = species_bins()[Species.LIQUID]
        n = np.ones((2, NKR))
        new_mass = np.tile(grid.masses, (2, 1))
        boundary = 0.5 * grid.masses[0]
        new_mass[0, 0] = boundary  # exactly at the cut: survives
        new_mass[1, 0] = np.nextafter(boundary, 0.0)  # below: evaporates
        for native in (True, False):
            n_new, evap = _remap_spectrum(n, new_mass, grid, native=native)
            assert evap[0] == 0.0
            assert evap[1] == 1.0
            # The surviving boundary particle deposits in the lowest bin
            # (clipped onto the ladder), the evaporated one nowhere.
            assert n_new[0].sum() == pytest.approx(n[0].sum(), rel=1e-12)
            assert n_new[1].sum() == pytest.approx(
                n[1].sum() - 1.0, rel=1e-12
            )

    def test_disable_env_matches_native_results(self, monkeypatch):
        grid, n, new_mass = self._workload(seed=5)
        n_nat, e_nat = _remap_spectrum(n, new_mass, grid)
        monkeypatch.setenv(ckernels.DISABLE_ENV, "1")
        n_off, e_off = _remap_spectrum(n, new_mass, grid)
        np.testing.assert_array_equal(n_nat, n_off)
        np.testing.assert_array_equal(e_nat, e_off)


# --- batched collision engine ------------------------------------------------


def _coal_run(dists, t=280.0, dt=5.0, batched=False, workspace=None):
    npts = next(iter(dists.values())).shape[0]
    return coal_bott_step(
        dists,
        np.full(npts, t),
        np.full(npts, 700.0),
        dt,
        get_tables(),
        INTERACTIONS,
        use_batched=batched,
        workspace=workspace,
    )


def _assert_dists_close(got, want, rtol=1e-12):
    for sp in Species:
        scale = float(np.abs(want[sp]).max()) or 1.0
        np.testing.assert_allclose(
            got[sp], want[sp], rtol=rtol, atol=rtol * scale, err_msg=str(sp)
        )


class TestBatchedCoal:
    def test_matches_unbatched_warm_rain(self):
        a = make_liquid_dists(24, seed=3)
        b = {sp: d.copy() for sp, d in a.items()}
        _coal_run(a)
        _coal_run(b, batched=True, workspace=CoalWorkspace())
        _assert_dists_close(b, a)

    def test_matches_unbatched_mixed_phase(self):
        rng = np.random.default_rng(4)
        a = {sp: np.zeros((16, NKR)) for sp in Species}
        for sp in (Species.LIQUID, Species.SNOW, Species.GRAUPEL,
                   Species.ICE_PLA):
            a[sp][:, 4:20] = rng.uniform(0.0, 2.0, (16, 16))
        b = {sp: d.copy() for sp, d in a.items()}
        _coal_run(a, t=258.0)
        _coal_run(b, t=258.0, batched=True, workspace=CoalWorkspace())
        _assert_dists_close(b, a)

    def test_matches_unbatched_when_limiter_binds(self):
        # 100x concentrations at a large dt force the positivity
        # limiter's rescale branch in nearly every interaction.
        a = make_liquid_dists(12, seed=9, lo_bin=10, hi_bin=25)
        a[Species.LIQUID] *= 100.0
        b = {sp: d.copy() for sp, d in a.items()}
        _coal_run(a, dt=60.0)
        _coal_run(b, dt=60.0, batched=True, workspace=CoalWorkspace())
        _assert_dists_close(b, a)
        assert (b[Species.LIQUID] >= 0).all()

    def test_mass_conserved(self):
        dists = make_liquid_dists(20, seed=2)
        before = total_mass(dists)
        _coal_run(dists, batched=True, workspace=CoalWorkspace())
        assert total_mass(dists) == pytest.approx(before, rel=1e-10)

    def test_empty_state_short_circuits(self):
        dists = {sp: np.zeros((8, NKR)) for sp in Species}
        ws = CoalWorkspace()
        stats = _coal_run(dists, batched=True, workspace=ws)
        assert stats.pair_entries == 0
        assert ws.allocations == 0  # no interaction ever applied
        assert total_mass(dists) == 0.0


class TestCoalWorkspace:
    def test_zero_allocations_after_warmup(self):
        initial = make_liquid_dists(32, seed=6)
        ws = CoalWorkspace()
        _coal_run({sp: d.copy() for sp, d in initial.items()},
                  batched=True, workspace=ws)
        assert ws.allocations > 0
        assert ws.nbytes > 0
        warm = ws.allocations
        for _ in range(3):
            _coal_run({sp: d.copy() for sp, d in initial.items()},
                      batched=True, workspace=ws)
        assert ws.allocations == warm  # steady state reuses every buffer

    def test_buffers_grow_monotonically(self):
        ws = CoalWorkspace()
        a = ws.buffer("x", (4, 8))
        assert a.shape == (4, 8) and ws.allocations == 1
        # Smaller request reuses the pool; larger one grows it.
        ws.buffer("x", (2, 8))
        assert ws.allocations == 1
        ws.buffer("x", (8, 8))
        assert ws.allocations == 2

    def test_registry_keyed_by_owner(self):
        ws1 = get_coal_workspace(owner="test-owner-a")
        ws2 = get_coal_workspace(owner="test-owner-a")
        ws3 = get_coal_workspace(owner="test-owner-b")
        assert ws1 is ws2
        assert ws1 is not ws3
