"""Vectorized collision step vs the scalar Fortran-shaped reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsbm.coal_bott import coal_bott_step
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.reference import coal_bott_reference_point
from repro.fsbm.species import INTERACTIONS, Species


def _compare_point(point_dists, t, p, dt=5.0):
    """Run both implementations on one grid point and compare."""
    tables = get_tables()
    ref = coal_bott_reference_point(point_dists, t, p, dt, tables, INTERACTIONS)

    vec = {sp: d[None, :].copy() for sp, d in point_dists.items()}
    coal_bott_step(
        vec,
        np.array([t]),
        np.array([p]),
        dt,
        tables,
        INTERACTIONS,
        on_demand=True,
    )
    for sp in Species:
        np.testing.assert_allclose(
            vec[sp][0],
            ref[sp],
            rtol=1e-9,
            atol=1e-18,
            err_msg=f"{sp} differs between vectorized and reference",
        )


def test_warm_rain_point_matches():
    rng = np.random.default_rng(0)
    dists = {sp: np.zeros(33) for sp in Species}
    dists[Species.LIQUID][5:18] = rng.uniform(0, 5, 13)
    _compare_point(dists, t=285.0, p=750.0)


def test_mixed_phase_point_matches():
    rng = np.random.default_rng(1)
    dists = {sp: np.zeros(33) for sp in Species}
    dists[Species.LIQUID][4:12] = rng.uniform(0, 3, 8)
    dists[Species.SNOW][8:16] = rng.uniform(0, 1, 8)
    dists[Species.GRAUPEL][10:20] = rng.uniform(0, 0.5, 10)
    _compare_point(dists, t=260.0, p=550.0)


def test_cold_point_all_interactions_match():
    rng = np.random.default_rng(2)
    dists = {sp: np.zeros(33) for sp in Species}
    for sp in Species:
        dists[sp][3:25] = rng.uniform(0, 0.5, 22)
    _compare_point(dists, t=250.0, p=500.0)


def test_limiter_regime_matches():
    """Huge concentrations drive the limiter; both paths must agree."""
    dists = {sp: np.zeros(33) for sp in Species}
    dists[Species.LIQUID][10:20] = 500.0
    _compare_point(dists, t=280.0, p=700.0, dt=60.0)


@given(seed=st.integers(0, 200), t=st.floats(235.0, 300.0))
@settings(max_examples=10, deadline=None)
def test_random_points_match(seed, t):
    rng = np.random.default_rng(seed)
    dists = {sp: np.zeros(33) for sp in Species}
    dists[Species.LIQUID][rng.integers(0, 15) : rng.integers(16, 33)] = rng.uniform(
        0, 4
    )
    dists[Species.SNOW][rng.integers(0, 15) : rng.integers(16, 33)] = rng.uniform(
        0, 1
    )
    _compare_point(dists, t=t, p=float(rng.uniform(450, 950)))


def test_growth_reference_conserves_against_vectorized():
    from repro.fsbm.bins import BinGrid
    from repro.fsbm.reference import droplet_growth_reference

    rng = np.random.default_rng(3)
    n = np.zeros(33)
    n[6:14] = rng.uniform(0, 5, 8)
    grid = BinGrid()
    n_new, dqv = droplet_growth_reference(
        n, temperature=285.0, pressure_mb=800.0, qv=0.012, rho_air=1e-3, dt=5.0
    )
    # Water conservation: condensate gain equals vapor loss.
    dmass = (n_new - n) @ grid.masses
    assert dmass == pytest.approx(-dqv * 1e-3, rel=1e-12)
    # Supersaturated air grows the drops.
    assert dmass > 0
