"""The Sec. VIII extensions: condensation/advection offload semantics."""

import numpy as np
import pytest

from repro.core.env import PAPER_ENV
from repro.errors import ConfigurationError
from repro.fsbm.species import Species
from repro.optim.stages import Stage
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def _run(offload_condensation=False, offload_advection=False, steps=2):
    nl = conus12km_namelist(
        scale=0.05,
        num_ranks=2,
        stage=Stage.OFFLOAD_COLLAPSE3,
        num_gpus=2,
        env=PAPER_ENV,
        offload_condensation=offload_condensation,
        offload_advection=offload_advection,
    )
    model = WrfModel(nl)
    try:
        result = model.run(num_steps=steps)
        out = model.gather_output()
        kernels = {r.name for recs in result.kernel_records for r in recs}
        return result, out, kernels
    finally:
        model.close()


class TestCondensationOffload:
    def test_launches_its_own_kernel(self):
        _, _, kernels = _run(offload_condensation=True)
        assert "onecond_loop" in kernels

    def test_numerics_unchanged(self):
        """Offloading only relocates the cost: the condensation body is
        the same float64 computation, so results match exactly."""
        _, base, _ = _run(offload_condensation=False)
        _, cond, _ = _run(offload_condensation=True)
        for name in base:
            np.testing.assert_array_equal(base[name], cond[name])

    def test_faster_than_cpu_condensation(self):
        r_base, _, _ = _run(offload_condensation=False)
        r_cond, _, _ = _run(offload_condensation=True)
        assert r_cond.elapsed < r_base.elapsed

    def test_requires_gpu_stage(self):
        with pytest.raises(ConfigurationError):
            conus12km_namelist(
                scale=0.05,
                num_ranks=2,
                stage=Stage.BASELINE,
                offload_condensation=True,
            )


class TestAdvectionOffload:
    def test_launches_transport_kernel(self):
        _, _, kernels = _run(offload_advection=True)
        assert "rk_scalar_tend_loop" in kernels

    def test_numerics_unchanged(self):
        _, base, _ = _run(offload_advection=False)
        _, adv, _ = _run(offload_advection=True)
        for name in base:
            np.testing.assert_array_equal(base[name], adv[name])

    def test_transport_region_moves_off_the_cpu(self):
        r_base, _, _ = _run(offload_advection=False)
        r_adv, _, _ = _run(offload_advection=True)
        base_rk = r_base.region_seconds("rk_scalar_tend")
        adv_rk = r_adv.region_seconds("rk_scalar_tend")
        # Still charged to the region (the profilers see it), but now
        # it is device time, and far cheaper.
        assert adv_rk < base_rk / 3

    def test_requires_gpu_stage(self):
        with pytest.raises(ConfigurationError):
            conus12km_namelist(
                scale=0.05,
                num_ranks=2,
                stage=Stage.LOOKUP,
                offload_advection=True,
            )


class TestStacking:
    def test_each_offload_compounds(self):
        r0, _, _ = _run()
        r1, _, _ = _run(offload_condensation=True)
        r2, _, _ = _run(offload_condensation=True, offload_advection=True)
        assert r0.elapsed > r1.elapsed > r2.elapsed
