"""Collision-kernel tables: physics sanity and the two access paths."""

import numpy as np
import pytest

from repro.constants import KERNEL_P_HIGH_MB, KERNEL_P_LOW_MB
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.species import INTERACTIONS, interactions_for_regime


class TestTableConstruction:
    def test_all_forty_tables_built(self, tables):
        assert len(tables.tables_750) == 20
        assert len(tables.tables_500) == 20
        for name, k in tables.tables_750.items():
            assert k.shape == (33, 33)
            assert (k >= 0).all(), f"{name} has negative kernel values"

    def test_lower_pressure_speeds_collection(self, tables):
        """At 500 mb fall speeds are faster, so kernels are larger."""
        for name in ("cwls", "cwlg", "cwlh"):
            k750 = tables.tables_750[name]
            k500 = tables.tables_500[name]
            # Compare where the kernel is non-trivial.
            mask = k750 > k750.max() * 1e-3
            assert (k500[mask] >= k750[mask]).all()

    def test_drop_drop_kernel_nonzero_on_diagonal(self, tables):
        """The Long-style term keeps equal-size drops coalescing."""
        diag = np.diag(tables.tables_750["cwll"])
        assert (diag[5:20] > 0).all()

    def test_singleton_is_cached(self):
        assert get_tables() is get_tables()


class TestInterpolation:
    def test_endpoints_reproduce_reference_tables(self, tables):
        k = tables.interpolate_table("cwls", KERNEL_P_HIGH_MB)
        np.testing.assert_allclose(k, tables.tables_750["cwls"])
        k = tables.interpolate_table("cwls", KERNEL_P_LOW_MB)
        np.testing.assert_allclose(k, tables.tables_500["cwls"])

    def test_midpoint_is_average(self, tables):
        mid = 0.5 * (KERNEL_P_HIGH_MB + KERNEL_P_LOW_MB)
        k = tables.interpolate_table("cwlg", mid)
        expected = 0.5 * (tables.tables_750["cwlg"] + tables.tables_500["cwlg"])
        np.testing.assert_allclose(k, expected)

    def test_levels_vectorization_matches_scalar(self, tables):
        ps = np.array([400.0, 600.0, 850.0])
        stacked = tables.interpolate_levels("cwll", ps)
        for i, p in enumerate(ps):
            np.testing.assert_allclose(
                stacked[i], tables.interpolate_table("cwll", float(p))
            )


class TestOnDemandPath:
    def test_get_cw_matches_full_table(self, tables):
        """Listing 5's functions read the very same values kernals_ks
        would have precomputed — the refactor is numerics-preserving."""
        full = tables.interpolate_table("cwlg", 620.0)
        for i, j in [(1, 1), (10, 20), (33, 33)]:
            assert tables.get_cw("cwlg", i, j, 620.0) == pytest.approx(
                full[i - 1, j - 1]
            )

    def test_named_accessors_exist_for_all_interactions(self, tables):
        for ix in INTERACTIONS:
            fn = getattr(tables, f"get_{ix.name}")
            assert fn(1, 1, 700.0) == tables.get_cw(ix.name, 1, 1, 700.0)

    def test_unknown_accessor_raises(self, tables):
        with pytest.raises(AttributeError):
            tables.get_cwxx


class TestWorkAccounting:
    def test_baseline_count_is_all_twenty_tables(self, tables):
        assert tables.baseline_entry_count() == 20 * 33 * 33

    def test_ondemand_count_respects_regime_and_occupancy(self, tables):
        warm = interactions_for_regime(290.0)
        from repro.fsbm.species import Species

        occupied = {sp: 0 for sp in Species}
        occupied[Species.LIQUID] = 15
        n = tables.ondemand_entry_count(warm, occupied)
        assert n == 15 * 15  # only cwll, only occupied bins
        assert n < tables.baseline_entry_count()
