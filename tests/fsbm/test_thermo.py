"""Moist thermodynamics helpers: magnitudes and relationships."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import T_0
from repro.fsbm.thermo import (
    condensational_growth_coefficient,
    latent_heating,
    saturation_mixing_ratio,
    saturation_vapor_pressure_ice,
    saturation_vapor_pressure_water,
    supersaturation,
)


class TestSaturationPressure:
    def test_triple_point_value(self):
        """es(0 C) = 6.112 mb (the Tetens anchor)."""
        assert saturation_vapor_pressure_water(np.array(T_0)) == pytest.approx(
            6.112, rel=1e-6
        )
        assert saturation_vapor_pressure_ice(np.array(T_0)) == pytest.approx(
            6.112, rel=1e-6
        )

    def test_warm_magnitudes(self):
        """es(20 C) ~ 23.4 mb, es(30 C) ~ 42.5 mb (standard tables)."""
        assert saturation_vapor_pressure_water(np.array(T_0 + 20)) == pytest.approx(
            23.4, rel=0.02
        )
        assert saturation_vapor_pressure_water(np.array(T_0 + 30)) == pytest.approx(
            42.5, rel=0.02
        )

    @given(t=st.floats(200.0, 272.0))
    @settings(max_examples=40, deadline=None)
    def test_ice_below_water_below_freezing(self, t):
        """The WBF process depends on es_ice < es_water below 0 C."""
        esw = float(saturation_vapor_pressure_water(np.array(t)))
        esi = float(saturation_vapor_pressure_ice(np.array(t)))
        assert esi < esw

    @given(t=st.floats(200.0, 320.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_temperature(self, t):
        lo = float(saturation_vapor_pressure_water(np.array(t)))
        hi = float(saturation_vapor_pressure_water(np.array(t + 1.0)))
        assert hi > lo


class TestMixingRatio:
    def test_sea_level_20c_value(self):
        """qs(20 C, 1000 mb) ~ 14.7 g/kg."""
        qs = float(saturation_mixing_ratio(np.array(T_0 + 20), np.array(1000.0)))
        assert qs == pytest.approx(14.7e-3, rel=0.03)

    def test_lower_pressure_raises_qs(self):
        t = np.array(T_0 + 10)
        assert saturation_mixing_ratio(t, np.array(700.0)) > saturation_mixing_ratio(
            t, np.array(1000.0)
        )

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            saturation_mixing_ratio(np.array(280.0), np.array(900.0), over="mud")

    def test_supersaturation_sign(self):
        t, p = np.array(285.0), np.array(900.0)
        qs = saturation_mixing_ratio(t, p)
        assert supersaturation(qs * 1.05, t, p) > 0
        assert supersaturation(qs * 0.95, t, p) < 0


class TestGrowthAndLatentHeat:
    def test_growth_coefficient_magnitude(self):
        """G ~ 1e-6 cm^2/s near 0 C (the classic droplet-growth scale)."""
        g = float(
            condensational_growth_coefficient(np.array(T_0), np.array(1000.0))
        )
        assert 3e-7 < g < 3e-6

    def test_growth_faster_aloft(self):
        t = np.array(T_0)
        assert condensational_growth_coefficient(
            t, np.array(500.0)
        ) > condensational_growth_coefficient(t, np.array(1000.0))

    def test_latent_heating_magnitudes(self):
        """Condensing 1 g/kg warms ~2.5 K; freezing it ~0.33 K."""
        assert float(latent_heating(np.array(1e-3), "condensation")) == pytest.approx(
            2.49, rel=0.01
        )
        assert float(latent_heating(np.array(1e-3), "freezing")) == pytest.approx(
            0.332, rel=0.01
        )
        assert float(latent_heating(np.array(1e-3), "deposition")) > float(
            latent_heating(np.array(1e-3), "condensation")
        )

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            latent_heating(np.array(1e-3), "fizzing")
