"""Nucleation, sedimentation, freezing/melting, fall speeds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import T_0
from repro.fsbm.fallspeeds import DENSITY_FACTOR_MAX, terminal_velocity
from repro.fsbm.freezing import freezing_melting_step
from repro.fsbm.nucleation import jernucl01_ks
from repro.fsbm.sedimentation import sedimentation_step
from repro.fsbm.species import ICE_HABITS, Species, species_bins
from repro.fsbm.state import MicroState
from repro.fsbm.thermo import saturation_mixing_ratio


class TestFallspeeds:
    def test_monotone_in_radius(self):
        r = species_bins()[Species.LIQUID].radii
        v = terminal_velocity(Species.LIQUID, r)
        assert (np.diff(v) > 0).all()

    def test_hail_fastest_snow_slow(self):
        r = 0.2  # 2 mm
        vh = terminal_velocity(Species.HAIL, np.array([r]))
        vs = terminal_velocity(Species.SNOW, np.array([r]))
        assert vh > 3 * vs

    def test_stokes_regime_small_droplets(self):
        r = np.array([5.0e-4])  # 5 um
        v = terminal_velocity(Species.LIQUID, r)
        assert v == pytest.approx(1.19e6 * r**2, rel=0.01)

    def test_density_correction_capped(self):
        r = np.array([0.1])
        v_surface = terminal_velocity(Species.HAIL, r, 1000.0)
        v_strat = terminal_velocity(Species.HAIL, r, 30.0)
        assert v_strat <= v_surface * DENSITY_FACTOR_MAX * 1.0001

    def test_pressure_speeds_fall(self):
        r = np.array([0.05])
        assert terminal_velocity(Species.LIQUID, r, 500.0) > terminal_velocity(
            Species.LIQUID, r, 1000.0
        )


class TestNucleation:
    def _env(self, npts, t, rh):
        temp = np.full(npts, t)
        pres = np.full(npts, 700.0)
        qv = rh * saturation_mixing_ratio(temp, pres)
        rho = np.full(npts, 1.0e-3)
        ccn = np.full(npts, 150.0)
        dists = {sp: np.zeros((npts, 33)) for sp in Species}
        return dists, temp, pres, qv, rho, ccn

    def test_supersaturation_activates_droplets(self):
        dists, temp, pres, qv, rho, ccn = self._env(5, 290.0, 1.01)
        jernucl01_ks(dists, temp, pres, qv, rho, ccn, dt=5.0)
        assert dists[Species.LIQUID][:, 0].sum() > 0
        assert (ccn < 150.0).all()

    def test_subsaturated_air_inert(self):
        dists, temp, pres, qv, rho, ccn = self._env(5, 290.0, 0.9)
        jernucl01_ks(dists, temp, pres, qv, rho, ccn, dt=5.0)
        assert dists[Species.LIQUID].sum() == 0.0
        assert (ccn == 150.0).all()

    def test_ccn_reservoir_never_negative(self):
        dists, temp, pres, qv, rho, ccn = self._env(5, 290.0, 1.5)
        for _ in range(20):
            jernucl01_ks(dists, temp, pres, qv, rho, ccn, dt=5.0)
        assert (ccn >= -1e-12).all()

    def test_cold_supersaturated_air_nucleates_ice(self):
        dists, temp, pres, qv, rho, ccn = self._env(5, T_0 - 20.0, 1.0)
        jernucl01_ks(dists, temp, pres, qv, rho, ccn, dt=5.0)
        ice = sum(dists[sp].sum() for sp in ICE_HABITS)
        assert ice > 0

    def test_habit_partition_sums_to_total(self):
        dists, temp, pres, qv, rho, ccn = self._env(5, T_0 - 15.0, 1.0)
        jernucl01_ks(dists, temp, pres, qv, rho, ccn, dt=5.0)
        per_habit = [dists[sp][:, 0] for sp in ICE_HABITS]
        total = sum(p.sum() for p in per_habit)
        assert total > 0
        # Dendrites dominate near -15 C.
        assert dists[Species.ICE_DEN][:, 0].sum() >= dists[Species.ICE_COL][:, 0].sum()


class TestSedimentation:
    def _state(self, ni=4, nk=8, nj=3):
        state = MicroState(shape=(ni, nk, nj))
        state.dists[Species.LIQUID][:, nk - 2, :, 20] = 5.0  # big drops aloft
        return state

    def test_mass_conserved_including_precip(self):
        """Suspended mass + accumulated precipitation is invariant
        (both in per-cell-volume units, so they add directly)."""
        state = self._state()
        before = state.total_condensate_mass().sum()
        p_levels = np.linspace(950.0, 400.0, 8)
        for _ in range(30):
            sedimentation_step(state, p_levels, dz_cm=50_000.0, dt=5.0)
        after = state.total_condensate_mass().sum() + state.precip.sum()
        assert after == pytest.approx(before, rel=1e-9)

    def test_particles_fall_downward(self):
        state = self._state()
        p_levels = np.linspace(950.0, 400.0, 8)
        top_before = state.dists[Species.LIQUID][:, 6, :, :].sum()
        sedimentation_step(state, p_levels, dz_cm=50_000.0, dt=5.0)
        assert state.dists[Species.LIQUID][:, 6, :, :].sum() < top_before
        assert state.dists[Species.LIQUID][:, 5, :, :].sum() > 0

    def test_precip_accumulates_eventually(self):
        state = self._state(nk=4)
        p_levels = np.linspace(950.0, 700.0, 4)
        for _ in range(50):
            sedimentation_step(state, p_levels, dz_cm=50_000.0, dt=5.0)
        assert state.precip.sum() > 0

    def test_cfl_guard_fires(self):
        state = self._state()
        state.dists[Species.HAIL][:, 5, :, 30] = 1.0
        with pytest.raises(AssertionError, match="CFL"):
            sedimentation_step(
                state, np.linspace(950.0, 400.0, 8), dz_cm=1000.0, dt=5.0
            )


class TestFreezingMelting:
    def test_homogeneous_freezing_below_minus38(self):
        dists = {sp: np.zeros((4, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:20] = 2.0
        temp = np.full(4, T_0 - 40.0)
        rho = np.full(4, 1e-3)
        freezing_melting_step(dists, temp, rho, dt=5.0)
        assert dists[Species.LIQUID].sum() == pytest.approx(0.0, abs=1e-12)
        assert dists[Species.ICE_PLA].sum() > 0  # small drops
        assert dists[Species.HAIL].sum() > 0  # large drops

    def test_freezing_releases_latent_heat(self):
        dists = {sp: np.zeros((4, 33)) for sp in Species}
        dists[Species.LIQUID][:, 10:20] = 5.0
        temp = np.full(4, T_0 - 40.0)
        rho = np.full(4, 1e-3)
        freezing_melting_step(dists, temp, rho, dt=5.0)
        assert (temp > T_0 - 40.0).all()

    def test_no_freezing_at_warm_supercooling(self):
        dists = {sp: np.zeros((4, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:10] = 2.0
        temp = np.full(4, T_0 - 3.0)
        freezing_melting_step(dists, temp, np.full(4, 1e-3), dt=5.0)
        assert dists[Species.ICE_PLA].sum() == 0.0

    def test_snow_melts_fast_hail_slow(self):
        dists = {sp: np.zeros((4, 33)) for sp in Species}
        dists[Species.SNOW][:, 5:10] = 1.0
        dists[Species.HAIL][:, 5:10] = 1.0
        temp = np.full(4, T_0 + 5.0)
        snow0 = dists[Species.SNOW].sum()
        hail0 = dists[Species.HAIL].sum()
        freezing_melting_step(dists, temp, np.full(4, 1e-3), dt=5.0)
        assert dists[Species.SNOW].sum() < 0.01 * snow0  # essentially gone
        assert dists[Species.HAIL].sum() > 0.9 * hail0  # barely melted

    @given(t=st.floats(210.0, 310.0))
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_through_phase_changes(self, t):
        grids = species_bins()
        dists = {sp: np.zeros((4, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:20] = 2.0
        dists[Species.SNOW][:, 5:15] = 1.0
        before = sum((d @ grids[sp].masses).sum() for sp, d in dists.items())
        freezing_melting_step(dists, np.full(4, t), np.full(4, 1e-3), dt=5.0)
        after = sum((d @ grids[sp].masses).sum() for sp, d in dists.items())
        assert after == pytest.approx(before, rel=1e-9)
