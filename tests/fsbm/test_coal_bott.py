"""Collision–coalescence invariants: the heart of the reproduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsbm.coal_bott import (
    CoalSelection,
    _interaction_selection,
    _pair_split,
    coal_bott_step,
    predict_coal_work,
)
from repro.fsbm.species import INTERACTIONS, Species, species_bins
from tests.conftest import make_liquid_dists, total_mass


def _occupied(dists, eps=1e-10):
    out = {}
    for sp, d in dists.items():
        present = d > eps
        rev = present[:, ::-1]
        first = np.argmax(rev, axis=1)
        out[sp] = np.where(present.any(axis=1), d.shape[1] - first, 0)
    return out


def _step(dists, t=280.0, p=700.0, dt=5.0, **kw):
    npts = next(iter(dists.values())).shape[0]
    from repro.fsbm.collision_kernels import get_tables

    return coal_bott_step(
        dists,
        np.full(npts, t),
        np.full(npts, p),
        dt,
        get_tables(),
        INTERACTIONS,
        **kw,
    )


class TestConservation:
    @given(seed=st.integers(0, 1000), dt=st.floats(0.1, 30.0))
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_for_warm_rain(self, seed, dt):
        dists = make_liquid_dists(20, seed=seed)
        before = total_mass(dists)
        _step(dists, dt=dt)
        after = total_mass(dists)
        assert after == pytest.approx(before, rel=1e-10)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_mass_conserved_mixed_phase(self, seed):
        rng = np.random.default_rng(seed)
        dists = {sp: np.zeros((12, 33)) for sp in Species}
        for sp in (Species.LIQUID, Species.SNOW, Species.GRAUPEL, Species.ICE_PLA):
            dists[sp][:, 4:20] = rng.uniform(0, 2, (12, 16))
        before = total_mass(dists)
        _step(dists, t=258.0)
        assert total_mass(dists) == pytest.approx(before, rel=1e-10)

    @given(seed=st.integers(0, 500), dt=st.floats(1.0, 120.0))
    @settings(max_examples=25, deadline=None)
    def test_no_negative_concentrations_even_at_large_dt(self, seed, dt):
        dists = make_liquid_dists(10, seed=seed, lo_bin=10, hi_bin=25)
        dists[Species.LIQUID] *= 100.0  # drive the limiter hard
        _step(dists, dt=dt)
        for sp, d in dists.items():
            assert (d >= 0).all(), f"{sp} went negative"


class TestPhysicalBehaviour:
    def test_collisions_move_mass_to_larger_bins(self):
        dists = make_liquid_dists(8, lo_bin=5, hi_bin=15)
        big_before = dists[Species.LIQUID][:, 15:].sum()
        _step(dists)
        big_after = dists[Species.LIQUID][:, 15:].sum()
        assert big_after > big_before

    def test_total_number_decreases(self):
        """Coalescence only merges particles."""
        dists = make_liquid_dists(8)
        n_before = dists[Species.LIQUID].sum()
        _step(dists)
        n_after = sum(d.sum() for d in dists.values())
        assert n_after < n_before

    def test_riming_produces_graupel(self):
        dists = {sp: np.zeros((6, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:12] = 5.0
        dists[Species.ICE_PLA][:, 8:16] = 1.0
        _step(dists, t=262.0)
        assert dists[Species.GRAUPEL].sum() > 0

    def test_warm_points_skip_ice_interactions(self):
        dists = {sp: np.zeros((6, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:12] = 5.0
        dists[Species.SNOW][:, 8:16] = 1.0
        snow_before = dists[Species.SNOW].copy()
        _step(dists, t=290.0)  # above freezing: cwls inactive
        np.testing.assert_array_equal(dists[Species.SNOW], snow_before)

    def test_empty_state_is_noop(self):
        dists = {sp: np.zeros((5, 33)) for sp in Species}
        stats = _step(dists)
        assert stats.pair_entries == 0
        assert total_mass(dists) == 0.0

    def test_cold_cutoff_skips_everything(self):
        dists = make_liquid_dists(5)
        before = {sp: d.copy() for sp, d in dists.items()}
        _step(dists, t=210.0)  # below every interaction's gate? no: LL has no gate
        # LL still runs (it has no temperature gate) — the cutoff lives
        # in the caller (fast_sbm's call_coal predicate).
        assert not np.array_equal(dists[Species.LIQUID], before[Species.LIQUID])


class TestWorkAccounting:
    def test_baseline_charges_all_twenty_tables(self):
        dists = make_liquid_dists(10)
        stats = _step(dists, on_demand=False)
        assert stats.kernel_entries >= 10 * 20 * 33 * 33

    def test_ondemand_charges_less(self):
        d1 = make_liquid_dists(10)
        d2 = make_liquid_dists(10)
        occ = _occupied(d1)
        base = _step(d1, on_demand=False, occupied=occ)
        ond = _step(d2, on_demand=True, occupied=occ)
        assert ond.kernel_entries < base.kernel_entries / 10

    def test_predict_matches_step_stats(self):
        from repro.fsbm.collision_kernels import get_tables

        dists = make_liquid_dists(15)
        occ = _occupied(dists)
        t = np.full(15, 280.0)
        predicted = predict_coal_work(
            dists, t, get_tables(), INTERACTIONS, occ, on_demand=True
        )
        actual = _step(dists, occupied=occ, on_demand=True)
        assert predicted.kernel_entries == actual.kernel_entries
        assert predicted.pair_entries == actual.pair_entries

    def test_flops_positive_when_active(self):
        stats = _step(make_liquid_dists(5))
        assert stats.flops > 0
        assert stats.bytes_moved > 0


class TestPrecisionPaths:
    def test_float32_close_to_float64(self):
        d64 = make_liquid_dists(10)
        d32 = {sp: d.copy() for sp, d in d64.items()}
        _step(d64, dtype=np.float64)
        _step(d32, dtype=np.float32)
        for sp in Species:
            np.testing.assert_allclose(
                d32[sp], d64[sp], rtol=2e-5, atol=1e-12
            )

    def test_float32_differs_in_last_digits(self):
        """The device-precision path must NOT be bitwise identical —
        that difference is what Sec. VII-B measures."""
        d64 = make_liquid_dists(10)
        d32 = {sp: d.copy() for sp, d in d64.items()}
        _step(d64, dtype=np.float64)
        _step(d32, dtype=np.float32)
        assert not np.array_equal(d32[Species.LIQUID], d64[Species.LIQUID])


class TestOccupiedSlicing:
    def test_occupied_bins_give_identical_results(self):
        """Restricting loops to occupied bins must not change physics."""
        d_full = make_liquid_dists(10)
        d_occ = {sp: d.copy() for sp, d in d_full.items()}
        _step(d_full, occupied=None)
        _step(d_occ, occupied=_occupied(d_occ))
        for sp in Species:
            np.testing.assert_allclose(d_occ[sp], d_full[sp], rtol=1e-12)


def _mixed_state(npts, seed, boost=1.0):
    """Randomized mixed-phase state exercising warm + cold interactions."""
    rng = np.random.default_rng(seed)
    dists = {sp: np.zeros((npts, 33)) for sp in Species}
    dists[Species.LIQUID][:, 3:22] = boost * rng.uniform(0.0, 4.0, (npts, 19))
    cold = np.arange(npts) % 2 == 1
    ncold = int(cold.sum())
    dists[Species.SNOW][cold, 6:20] = boost * rng.uniform(0.0, 1.5, (ncold, 14))
    dists[Species.GRAUPEL][cold, 8:18] = boost * rng.uniform(0.0, 1.0, (ncold, 10))
    dists[Species.ICE_PLA][cold, 4:14] = boost * rng.uniform(0.0, 0.8, (ncold, 10))
    temperature = np.where(cold, 258.0, 283.0) + rng.uniform(-3.0, 3.0, npts)
    pressure_mb = rng.uniform(520.0, 980.0, npts)
    return dists, temperature, pressure_mb


def _max_rel_dev(got, ref):
    worst = 0.0
    for sp in Species:
        scale = float(np.abs(ref[sp]).max()) or 1.0
        dev = np.abs(got[sp] - ref[sp])
        rel = dev / np.maximum(np.abs(ref[sp]), 1e-30)
        # Deviations below ~500 ULP of the field scale are rounding
        # noise (e.g. a bin the limiter drained to ~0 by cancellation),
        # not structure; the relative criterion applies above it.
        rel = np.where(dev < 1e-13 * scale, 0.0, rel)
        worst = max(worst, float(rel.max()))
    return worst


class TestSparseEngine:
    """The factored sparse contraction against the dense reference."""

    def _both(self, dists, t, p, dt=5.0, occupied="auto", dtype=np.float64):
        from repro.fsbm.collision_kernels import get_tables

        occ = _occupied(dists) if occupied == "auto" else occupied
        dense = {sp: d.copy() for sp, d in dists.items()}
        sparse = {sp: d.copy() for sp, d in dists.items()}
        kw = dict(occupied=occ, on_demand=True, dtype=dtype)
        coal_bott_step(
            dense, t, p, dt, get_tables(), INTERACTIONS, use_sparse=False, **kw
        )
        coal_bott_step(
            sparse, t, p, dt, get_tables(), INTERACTIONS, use_sparse=True, **kw
        )
        return sparse, dense

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_sparse_matches_dense_to_1e12(self, seed):
        dists, t, p = _mixed_state(48, seed)
        sparse, dense = self._both(dists, t, p)
        assert _max_rel_dev(sparse, dense) < 1e-12

    def test_sparse_matches_dense_without_occupied(self):
        dists, t, p = _mixed_state(32, seed=7)
        sparse, dense = self._both(dists, t, p, occupied=None)
        assert _max_rel_dev(sparse, dense) < 1e-12

    @given(seed=st.integers(0, 500), dt=st.floats(10.0, 120.0))
    @settings(max_examples=10, deadline=None)
    def test_sparse_matches_dense_with_binding_limiter(self, seed, dt):
        # Large concentrations + long dt force the limiter to bind,
        # exercising the sparse engine's slow (re-contraction) path.
        dists, t, p = _mixed_state(32, seed, boost=100.0)
        sparse, dense = self._both(dists, t, p, dt=dt)
        assert _max_rel_dev(sparse, dense) < 1e-12

    def test_sparse_float32_matches_dense_float32(self):
        dists, t, p = _mixed_state(32, seed=11)
        sparse, dense = self._both(dists, t, p, dtype=np.float32)
        for sp in Species:
            np.testing.assert_allclose(sparse[sp], dense[sp], rtol=2e-4, atol=1e-10)

    def test_sparse_conserves_mass(self):
        dists, t, p = _mixed_state(24, seed=3)
        before = total_mass(dists)
        from repro.fsbm.collision_kernels import get_tables

        coal_bott_step(
            dists, t, p, 5.0, get_tables(), INTERACTIONS,
            occupied=_occupied(dists), on_demand=True, use_sparse=True,
        )
        assert total_mass(dists) == pytest.approx(before, rel=1e-10)

    def test_pair_split_structure_is_triangular(self):
        """The mass-doubling ladder satisfies the sparse engine's
        destination structure (otherwise it falls back to dense)."""
        assert _pair_split(33).triangular
        assert _pair_split(17).triangular


class TestCoalSelection:
    def test_masks_match_reference_selection(self):
        dists, t, _ = _mixed_state(40, seed=5)
        sel = CoalSelection.build(dists, t)
        for ix in INTERACTIONS:
            np.testing.assert_array_equal(
                sel.mask(ix), _interaction_selection(dists, t, ix)
            )

    def test_shared_selection_gives_identical_step(self):
        from repro.fsbm.collision_kernels import get_tables

        dists, t, p = _mixed_state(32, seed=9)
        occ = _occupied(dists)
        auto = {sp: d.copy() for sp, d in dists.items()}
        shared = {sp: d.copy() for sp, d in dists.items()}
        coal_bott_step(
            auto, t, p, 5.0, get_tables(), INTERACTIONS,
            occupied=occ, on_demand=True,
        )
        sel = CoalSelection.build(shared, t)
        coal_bott_step(
            shared, t, p, 5.0, get_tables(), INTERACTIONS,
            occupied=occ, on_demand=True, selection=sel,
        )
        for sp in Species:
            np.testing.assert_array_equal(shared[sp], auto[sp])

    def test_fork_isolates_mutations(self):
        dists, t, _ = _mixed_state(16, seed=2)
        base = CoalSelection.build(dists, t)
        fork = base.fork()
        dists[Species.LIQUID][:, :] = 0.0
        fork.refresh(dists, {Species.LIQUID}, np.arange(16))
        ll = INTERACTIONS[0]
        assert not fork.mask(ll).any()
        # the pristine instance still sees the pre-mutation sums
        assert base.mask(ll).any()

    def test_selection_cascade_matches_per_interaction_recompute(self):
        """Sequential selection: an interaction that empties a species
        must stop later interactions at those points, exactly as the
        scalar loop's per-interaction recompute does. The riming chain
        (liquid + ice -> graupel) changes selections mid-step; shared
        and unshared paths already agree bitwise (above), so here we
        only confirm the cascade actually fires in this state."""
        dists, t, p = _mixed_state(32, seed=13)
        sel_before = CoalSelection.build(dists, t)
        graupel_ix = [
            ix for ix in INTERACTIONS if ix.product is Species.GRAUPEL
        ][0]
        pre = sel_before.mask(graupel_ix).copy()
        from repro.fsbm.collision_kernels import get_tables

        coal_bott_step(
            dists, t, p, 5.0, get_tables(), INTERACTIONS,
            occupied=_occupied(dists), on_demand=True,
        )
        post = CoalSelection.build(dists, t).mask(graupel_ix)
        assert not np.array_equal(pre, post) or dists[Species.GRAUPEL].sum() > 0
