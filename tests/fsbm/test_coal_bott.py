"""Collision–coalescence invariants: the heart of the reproduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsbm.coal_bott import coal_bott_step, predict_coal_work
from repro.fsbm.species import INTERACTIONS, Species, species_bins
from tests.conftest import make_liquid_dists, total_mass


def _occupied(dists, eps=1e-10):
    out = {}
    for sp, d in dists.items():
        present = d > eps
        rev = present[:, ::-1]
        first = np.argmax(rev, axis=1)
        out[sp] = np.where(present.any(axis=1), d.shape[1] - first, 0)
    return out


def _step(dists, t=280.0, p=700.0, dt=5.0, **kw):
    npts = next(iter(dists.values())).shape[0]
    from repro.fsbm.collision_kernels import get_tables

    return coal_bott_step(
        dists,
        np.full(npts, t),
        np.full(npts, p),
        dt,
        get_tables(),
        INTERACTIONS,
        **kw,
    )


class TestConservation:
    @given(seed=st.integers(0, 1000), dt=st.floats(0.1, 30.0))
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_for_warm_rain(self, seed, dt):
        dists = make_liquid_dists(20, seed=seed)
        before = total_mass(dists)
        _step(dists, dt=dt)
        after = total_mass(dists)
        assert after == pytest.approx(before, rel=1e-10)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_mass_conserved_mixed_phase(self, seed):
        rng = np.random.default_rng(seed)
        dists = {sp: np.zeros((12, 33)) for sp in Species}
        for sp in (Species.LIQUID, Species.SNOW, Species.GRAUPEL, Species.ICE_PLA):
            dists[sp][:, 4:20] = rng.uniform(0, 2, (12, 16))
        before = total_mass(dists)
        _step(dists, t=258.0)
        assert total_mass(dists) == pytest.approx(before, rel=1e-10)

    @given(seed=st.integers(0, 500), dt=st.floats(1.0, 120.0))
    @settings(max_examples=25, deadline=None)
    def test_no_negative_concentrations_even_at_large_dt(self, seed, dt):
        dists = make_liquid_dists(10, seed=seed, lo_bin=10, hi_bin=25)
        dists[Species.LIQUID] *= 100.0  # drive the limiter hard
        _step(dists, dt=dt)
        for sp, d in dists.items():
            assert (d >= 0).all(), f"{sp} went negative"


class TestPhysicalBehaviour:
    def test_collisions_move_mass_to_larger_bins(self):
        dists = make_liquid_dists(8, lo_bin=5, hi_bin=15)
        big_before = dists[Species.LIQUID][:, 15:].sum()
        _step(dists)
        big_after = dists[Species.LIQUID][:, 15:].sum()
        assert big_after > big_before

    def test_total_number_decreases(self):
        """Coalescence only merges particles."""
        dists = make_liquid_dists(8)
        n_before = dists[Species.LIQUID].sum()
        _step(dists)
        n_after = sum(d.sum() for d in dists.values())
        assert n_after < n_before

    def test_riming_produces_graupel(self):
        dists = {sp: np.zeros((6, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:12] = 5.0
        dists[Species.ICE_PLA][:, 8:16] = 1.0
        _step(dists, t=262.0)
        assert dists[Species.GRAUPEL].sum() > 0

    def test_warm_points_skip_ice_interactions(self):
        dists = {sp: np.zeros((6, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:12] = 5.0
        dists[Species.SNOW][:, 8:16] = 1.0
        snow_before = dists[Species.SNOW].copy()
        _step(dists, t=290.0)  # above freezing: cwls inactive
        np.testing.assert_array_equal(dists[Species.SNOW], snow_before)

    def test_empty_state_is_noop(self):
        dists = {sp: np.zeros((5, 33)) for sp in Species}
        stats = _step(dists)
        assert stats.pair_entries == 0
        assert total_mass(dists) == 0.0

    def test_cold_cutoff_skips_everything(self):
        dists = make_liquid_dists(5)
        before = {sp: d.copy() for sp, d in dists.items()}
        _step(dists, t=210.0)  # below every interaction's gate? no: LL has no gate
        # LL still runs (it has no temperature gate) — the cutoff lives
        # in the caller (fast_sbm's call_coal predicate).
        assert not np.array_equal(dists[Species.LIQUID], before[Species.LIQUID])


class TestWorkAccounting:
    def test_baseline_charges_all_twenty_tables(self):
        dists = make_liquid_dists(10)
        stats = _step(dists, on_demand=False)
        assert stats.kernel_entries >= 10 * 20 * 33 * 33

    def test_ondemand_charges_less(self):
        d1 = make_liquid_dists(10)
        d2 = make_liquid_dists(10)
        occ = _occupied(d1)
        base = _step(d1, on_demand=False, occupied=occ)
        ond = _step(d2, on_demand=True, occupied=occ)
        assert ond.kernel_entries < base.kernel_entries / 10

    def test_predict_matches_step_stats(self):
        from repro.fsbm.collision_kernels import get_tables

        dists = make_liquid_dists(15)
        occ = _occupied(dists)
        t = np.full(15, 280.0)
        predicted = predict_coal_work(
            dists, t, get_tables(), INTERACTIONS, occ, on_demand=True
        )
        actual = _step(dists, occupied=occ, on_demand=True)
        assert predicted.kernel_entries == actual.kernel_entries
        assert predicted.pair_entries == actual.pair_entries

    def test_flops_positive_when_active(self):
        stats = _step(make_liquid_dists(5))
        assert stats.flops > 0
        assert stats.bytes_moved > 0


class TestPrecisionPaths:
    def test_float32_close_to_float64(self):
        d64 = make_liquid_dists(10)
        d32 = {sp: d.copy() for sp, d in d64.items()}
        _step(d64, dtype=np.float64)
        _step(d32, dtype=np.float32)
        for sp in Species:
            np.testing.assert_allclose(
                d32[sp], d64[sp], rtol=2e-5, atol=1e-12
            )

    def test_float32_differs_in_last_digits(self):
        """The device-precision path must NOT be bitwise identical —
        that difference is what Sec. VII-B measures."""
        d64 = make_liquid_dists(10)
        d32 = {sp: d.copy() for sp, d in d64.items()}
        _step(d64, dtype=np.float64)
        _step(d32, dtype=np.float32)
        assert not np.array_equal(d32[Species.LIQUID], d64[Species.LIQUID])


class TestOccupiedSlicing:
    def test_occupied_bins_give_identical_results(self):
        """Restricting loops to occupied bins must not change physics."""
        d_full = make_liquid_dists(10)
        d_occ = {sp: d.copy() for sp, d in d_full.items()}
        _step(d_full, occupied=None)
        _step(d_occ, occupied=_occupied(d_occ))
        for sp in Species:
            np.testing.assert_allclose(d_occ[sp], d_full[sp], rtol=1e-12)
