"""Bin grid: doubling structure and the Kovetz–Olund split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fsbm.bins import BinGrid


@pytest.fixture(scope="module")
def grid():
    return BinGrid()


class TestMassLadder:
    def test_masses_double(self, grid):
        ratios = grid.masses[1:] / grid.masses[:-1]
        np.testing.assert_allclose(ratios, 2.0)

    def test_radii_monotone(self, grid):
        assert (np.diff(grid.radii) > 0).all()

    def test_mass_radius_consistency(self, grid):
        vol = 4.0 / 3.0 * np.pi * grid.radii**3
        np.testing.assert_allclose(vol * grid.density, grid.masses, rtol=1e-12)

    def test_density_shrinks_radius(self):
        dense = BinGrid(density=1.0)
        fluffy = BinGrid(density=0.1)
        assert (fluffy.radii > dense.radii).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BinGrid(nkr=1)
        with pytest.raises(ConfigurationError):
            BinGrid(x_min=-1.0)


class TestBinOfMass:
    def test_exact_centres(self, grid):
        for k in (0, 5, 32):
            assert grid.bin_of_mass(grid.masses[k]) == k

    def test_between_bins_floors(self, grid):
        m = grid.masses[7] * 1.5
        assert grid.bin_of_mass(m) == 7

    def test_clipping(self, grid):
        assert grid.bin_of_mass(grid.masses[0] / 100) == 0
        assert grid.bin_of_mass(grid.masses[-1] * 100) == grid.nkr - 1


class TestSplitMass:
    @given(factor=st.floats(1.0, 2.0 ** 31, exclude_max=True))
    @settings(max_examples=100, deadline=None)
    def test_number_and_mass_conserved_inside_grid(self, grid, factor):
        m = grid.x_min * factor
        k_lo, k_hi, w_lo, w_hi = grid.split_mass(m)
        x = grid.masses
        assert w_lo >= 0 and w_hi >= 0
        if m < x[-1]:
            assert w_lo + w_hi == pytest.approx(1.0)
            assert w_lo * x[k_lo] + w_hi * x[k_hi] == pytest.approx(m, rel=1e-12)

    def test_top_bin_overflow_conserves_mass_not_number(self, grid):
        m = grid.masses[-1] * 1.7
        k_lo, k_hi, w_lo, w_hi = grid.split_mass(m)
        assert k_lo == k_hi == grid.nkr - 1
        assert w_lo * grid.masses[-1] == pytest.approx(m)
        assert w_lo > 1.0  # number inflated to keep mass

    def test_below_grid_sheds_number(self, grid):
        m = grid.masses[0] * 0.25
        k_lo, k_hi, w_lo, w_hi = grid.split_mass(m)
        assert k_lo == 0 and w_hi == 0.0
        assert w_lo * grid.masses[0] == pytest.approx(m)


class TestPairCoalescenceTable:
    def test_every_pair_conserves_mass(self, grid):
        k_lo, k_hi, w_lo, w_hi = grid.pair_coalescence_table(grid, grid)
        x = grid.masses
        pair_mass = x[:, None] + x[None, :]
        remapped = w_lo * x[k_lo] + w_hi * x[k_hi]
        np.testing.assert_allclose(remapped, pair_mass, rtol=1e-12)

    def test_coalesced_bin_at_least_larger_source(self, grid):
        k_lo, k_hi, _, _ = grid.pair_coalescence_table(grid, grid)
        idx = np.arange(grid.nkr)
        larger = np.maximum(idx[:, None], idx[None, :])
        assert (k_hi >= larger).all()


def test_mass_content_matches_dot_product(grid):
    n = np.zeros((4, grid.nkr))
    n[:, 3] = 2.0
    np.testing.assert_allclose(grid.mass_content(n), 2.0 * grid.masses[3])
