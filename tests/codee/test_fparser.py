"""Parser: program structure, declarations, statements, expressions."""

import pytest

from repro.codee import sources
from repro.codee.fast import (
    Assignment,
    BinOp,
    CallStmt,
    DoLoop,
    IfBlock,
    VarRef,
)
from repro.codee.fparser import parse_source
from repro.errors import FortranSyntaxError


class TestProgramStructure:
    def test_module_with_contains(self):
        sf = parse_source(sources.KERNALS_KS_SOURCE)
        assert len(sf.modules) == 1
        mod = sf.modules[0]
        assert mod.name == "module_mp_fast_sbm"
        assert mod.implicit_none
        assert [r.name for r in mod.routines] == ["kernals_ks"]
        assert "cwll" in mod.module_variable_names()
        # Parameters are not variables.
        assert "nkr" not in mod.module_variable_names()

    def test_bare_subroutine(self):
        sf = parse_source(sources.MAIN_LOOP_SOURCE)
        (sub,) = sf.routines
        assert sub.name == "fast_sbm"
        assert "t_old" in sub.args
        assert sub.implicit_none

    def test_pure_function_prefix(self):
        src = (
            "pure real function get_cwlg(i, j, p)\n"
            "  integer, intent(in) :: i, j\n"
            "  real, intent(in) :: p\n"
            "  get_cwlg = p * i * j\n"
            "end function get_cwlg\n"
        )
        sf = parse_source(src)
        (fn,) = sf.routines
        assert fn.is_function
        assert "pure" in fn.prefixes

    def test_use_statement_and_pointers(self):
        sf = parse_source(sources.COAL_BOTT_POINTER_SOURCE)
        sub = sf.routines[0]
        assert sub.uses[0].module == "temp_arrays"
        decl, entity = sub.declaration_of("fl1")
        assert decl.is_pointer
        ptr_assigns = [
            s for s in sub.body if isinstance(s, Assignment) and s.pointer
        ]
        assert len(ptr_assigns) == 4


class TestDeclarations:
    def test_dims_and_intent(self):
        sf = parse_source(sources.COAL_BOTT_ORIGINAL_SOURCE)
        sub = sf.routines[0]
        decl, entity = sub.declaration_of("g2")
        assert len(entity.dims) == 2
        d_in, _ = sub.declaration_of("iin")
        assert d_in.intent == "in"

    def test_assumed_size_flag(self):
        sf = parse_source(sources.legacy_onecond_source())
        _, entity = sf.routines[0].declaration_of("fl")
        assert entity.assumed_size

    def test_parameter_with_initializer(self):
        src = (
            "module m\n"
            "  implicit none\n"
            "  integer, parameter :: nkr = 33\n"
            "contains\n"
            "subroutine s()\n"
            "  implicit none\n"
            "  integer :: i\n"
            "  i = nkr\n"
            "end subroutine s\n"
            "end module m\n"
        )
        mod = parse_source(src).modules[0]
        decl = mod.decls[0]
        assert decl.is_parameter
        assert decl.entities[0].init is not None

    def test_dimension_attribute(self):
        src = (
            "subroutine s()\n"
            "  implicit none\n"
            "  real, dimension(33) :: a, b\n"
            "  a(1) = b(1)\n"
            "end subroutine s\n"
        )
        sub = parse_source(src).routines[0]
        for name in ("a", "b"):
            _, e = sub.declaration_of(name)
            assert len(e.dims) == 1


class TestStatements:
    def test_nested_do_loops(self):
        sf = parse_source(sources.KERNALS_KS_SOURCE)
        loop = sf.modules[0].routines[0].loops()[0]
        assert loop.var == "j"
        assert loop.nest_depth() == 2
        assert loop.nest_vars() == ["j", "i"]
        assert loop.innermost().var == "i"

    def test_if_elseif_else_chain(self):
        sf = parse_source(sources.MAIN_LOOP_SOURCE)
        sub = sf.routines[0]
        outer_ifs = [
            s
            for loop in sub.loops()
            for s in loop.innermost().body
            if isinstance(s, IfBlock)
        ]
        assert outer_ifs, "temperature conditional parsed"
        t_if = outer_ifs[0]
        calls = [s for s in t_if.body if isinstance(s, CallStmt)]
        assert calls[0].name == "jernucl01_ks"
        inner_if = [s for s in t_if.body if isinstance(s, IfBlock)]
        assert inner_if[0].orelse or inner_if[0].elifs  # onecond1/onecond2 split

    def test_one_line_if(self):
        src = (
            "subroutine s(x)\n"
            "  implicit none\n"
            "  real, intent(inout) :: x\n"
            "  if (x > 0) x = x - 1\n"
            "end subroutine s\n"
        )
        sub = parse_source(src).routines[0]
        (stmt,) = sub.body
        assert isinstance(stmt, IfBlock)
        assert isinstance(stmt.body[0], Assignment)

    def test_directives_attach_to_following_loop(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "!$omp target teams distribute parallel do\n"
            "  do i = 1, n\n"
            "    a(i) = 0.0\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        sub = parse_source(src).routines[0]
        loop = sub.loops()[0]
        assert loop.directives
        assert "target teams" in loop.directives[0].text

    def test_do_with_step(self):
        src = (
            "subroutine s(n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  integer :: i, acc\n"
            "  do i = 1, n, 2\n"
            "    acc = acc + i\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        loop = parse_source(src).routines[0].loops()[0]
        assert loop.step is not None


class TestExpressions:
    def test_precedence(self):
        src = (
            "subroutine s(x, a, b, c)\n"
            "  implicit none\n"
            "  real, intent(inout) :: x\n"
            "  real, intent(in) :: a, b, c\n"
            "  x = a + b * c ** 2\n"
            "end subroutine s\n"
        )
        (stmt,) = parse_source(src).routines[0].body
        assert isinstance(stmt.value, BinOp)
        assert stmt.value.op == "+"
        assert stmt.value.right.op == "*"
        assert stmt.value.right.right.op == "**"

    def test_array_sections(self):
        sf = parse_source(sources.COAL_BOTT_POINTER_SOURCE)
        sub = sf.routines[0]
        ptr = [s for s in sub.body if isinstance(s, Assignment) and s.pointer][0]
        ref = ptr.value
        assert isinstance(ref, VarRef)
        assert ref.name == "fl1_temp"
        assert len(ref.subscripts) == 4

    def test_syntax_error_has_location(self):
        with pytest.raises(FortranSyntaxError, match="line"):
            parse_source("subroutine s(\nend subroutine\n")


def test_all_embedded_sources_parse():
    for name in (
        "KERNALS_KS_SOURCE",
        "MAIN_LOOP_SOURCE",
        "FISSIONED_LOOP_SOURCE",
        "COAL_BOTT_ORIGINAL_SOURCE",
        "COAL_BOTT_POINTER_SOURCE",
    ):
        parse_source(getattr(sources, name), name)
    parse_source(sources.legacy_onecond_source(), "onecond")
