"""The dependence-driven transformation engine over the loop IR."""

import pytest

from repro.codee import transform
from repro.codee.loopir import (
    ArrayParam,
    Assign,
    Const,
    Decl,
    Kernel,
    Let,
    Load,
    LocalArray,
    Loop,
    ScalarParam,
    Store,
    Sym,
)
from repro.codee.transform import (
    TransformPolicy,
    analyze_nest,
    collapse_nest,
    fission_loop,
    hoist_automatic_arrays,
    normalize_loops,
    plan_offload,
    simd_innermost,
)
from repro.errors import TransformError


def _copy2d(start=0):
    i, j = Sym("i"), Sym("j")
    nest = Loop(
        "i",
        Const(start),
        Sym("n"),
        [
            Loop(
                "j",
                Const(start),
                Sym("n"),
                [Store("out", (i, j), Load("src", (i, j)) * 2.0)],
            )
        ],
    )
    return Kernel(
        name="copy2d",
        params=(
            ArrayParam("src", strides=(Sym("n"), Const(1))),
            ArrayParam("out", strides=(Sym("n"), Const(1)), intent="out"),
            ScalarParam("n", "long"),
        ),
        body=[nest],
    )


class TestAnalyzeNest:
    def test_clean_elementwise_nest_is_fully_parallel(self):
        k = _copy2d()
        rep = analyze_nest(k, k.body[0])
        assert rep.parallelizable
        assert rep.parallel_depth == 2
        assert rep.read_only_arrays == ("src",)
        assert rep.write_only_arrays == ("out",)

    def test_offset_read_blocks_the_carried_loop(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(1),
            Sym("n"),
            [Store("a", (i,), Load("a", (i - 1,)))],
        )
        k = Kernel(
            "recur",
            (ArrayParam("a", strides=(Const(1),), intent="inout"),
             ScalarParam("n", "long")),
            [nest],
        )
        rep = analyze_nest(k, nest)
        assert rep.parallel_depth == 0
        assert any("loop-carried" in r for r in rep.reasons)

    def test_let_hidden_offset_is_seen_through(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(1),
            Sym("n"),
            [
                Let("im", i - 1, "long"),
                Store("a", (i,), Load("a", (Sym("im"),))),
            ],
        )
        k = Kernel(
            "recur_let",
            (ArrayParam("a", strides=(Const(1),), intent="inout"),
             ScalarParam("n", "long")),
            [nest],
        )
        rep = analyze_nest(k, nest)
        assert rep.parallel_depth == 0

    def test_nonrectangular_bounds_block_the_inner_loop(self):
        i, j = Sym("i"), Sym("j")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Loop("j", Const(0), i, [Store("out", (i, j), Const(0))])],
        )
        k = Kernel(
            "tri",
            (ArrayParam("out", strides=(Sym("n"), Const(1)), intent="out"),
             ScalarParam("n", "long")),
            [nest],
        )
        rep = analyze_nest(k, nest)
        assert rep.parallel_depth == 1
        assert any("non-rectangular" in r for r in rep.reasons)

    def test_outside_scalar_accumulation_is_a_reduction_candidate(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Assign("acc", Sym("acc") + Load("a", (i,)))],
        )
        k = Kernel(
            "sum",
            (ArrayParam("a", strides=(Const(1),)), ScalarParam("n", "long")),
            [Decl("acc", "double", Const(0)), nest],
        )
        rep = analyze_nest(k, nest)
        assert rep.parallel_depth == 0
        assert ("+", "acc") in rep.reductions

    def test_indirect_store_blocks_everything(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Store("hist", (Load("idx", (i,)),), Const(1), op="+=")],
        )
        k = Kernel(
            "scatter",
            (
                ArrayParam("hist", strides=(Const(1),), intent="inout"),
                ArrayParam("idx", strides=(Const(1),), ctype="long"),
                ScalarParam("n", "long"),
            ),
            [nest],
        )
        rep = analyze_nest(k, nest)
        assert rep.parallel_depth == 0
        assert any("indirectly indexed" in r for r in rep.reasons)


class TestPasses:
    def test_normalize_rebases_one_based_loops(self):
        k = _copy2d(start=1)
        res = normalize_loops(k)
        assert res.applied
        nest = k.body[0]
        assert nest.start == Const(0)
        store = nest.body[0].body[0]
        # i in the body became (i + 1)
        assert Sym("i") + 1 in store.index

    def test_collapse_derived_keeps_one_serial_inner(self):
        k = _copy2d()
        nest = k.body[0]
        res = collapse_nest(k, nest, TransformPolicy())
        assert res.applied
        assert nest.parallel and nest.collapse == 1  # depth 2 - 1 serial

    def test_collapse_explicit_request_beyond_proof_is_refused(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [
                Loop(
                    "j",
                    Const(0),
                    Sym("n"),
                    [Store("out", (i, Const(0)), Const(0))],
                )
            ],
        )
        k = Kernel(
            "race",
            (ArrayParam("out", strides=(Sym("n"), Const(1)), intent="out"),
             ScalarParam("n", "long")),
            [nest],
        )
        with pytest.raises(TransformError, match="provably independent"):
            collapse_nest(k, nest, TransformPolicy(collapse=2))
        assert not nest.parallel

    def test_depth_one_nest_stays_serial_by_policy_floor(self):
        i = Sym("i")
        nest = Loop("i", Const(0), Sym("n"), [Store("out", (i,), Const(0))])
        k = Kernel(
            "flat",
            (ArrayParam("out", strides=(Const(1),), intent="out"),
             ScalarParam("n", "long")),
            [nest],
        )
        res = collapse_nest(k, nest, TransformPolicy())
        assert not res.applied
        assert "overhead floor" in res.detail

    def test_fission_splits_independent_groups(self):
        i = Sym("i")
        loop = Loop(
            "i",
            Const(0),
            Sym("n"),
            [
                Store("a", (i,), Const(1)),
                Store("b", (i,), Const(2)),
            ],
        )
        k = Kernel(
            "two",
            (
                ArrayParam("a", strides=(Const(1),), intent="out"),
                ArrayParam("b", strides=(Const(1),), intent="out"),
                ScalarParam("n", "long"),
            ),
            [loop],
        )
        res = fission_loop(k, loop)
        assert res.applied
        assert len(k.loops()) == 2

    def test_fission_keeps_local_array_with_its_users(self):
        i = Sym("i")
        loop = Loop(
            "i",
            Const(0),
            Sym("n"),
            [
                LocalArray("buf", 8),
                Store("buf", (Const(0),), Load("a", (i,))),
                Store("out", (i,), Load("buf", (Const(0),))),
            ],
        )
        k = Kernel(
            "localbuf",
            (
                ArrayParam("a", strides=(Const(1),)),
                ArrayParam("out", strides=(Const(1),), intent="out"),
                ScalarParam("n", "long"),
            ),
            [loop],
        )
        res = fission_loop(k, loop)
        assert not res.applied  # everything shares buf: one group

    def test_hoist_rewrites_local_arrays_of_parallel_nests(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [
                Loop(
                    "j",
                    Const(0),
                    Sym("n"),
                    [
                        LocalArray("buf", 4),
                        Store("buf", (Const(0),), Const(1)),
                        Store(
                            "out",
                            (i, Sym("j")),
                            Load("buf", (Const(0),)),
                        ),
                    ],
                )
            ],
        )
        k = Kernel(
            "hoist",
            (ArrayParam("out", strides=(Sym("n"), Const(1)), intent="out"),
             ScalarParam("n", "long")),
            [nest],
        )
        nest.parallel = True
        nest.collapse = 2
        res = hoist_automatic_arrays(k, nest)
        assert res.applied
        assert "buf_temp" in k.arrays()
        assert not k.local_arrays()

    def test_hoist_leaves_serial_nests_alone(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [LocalArray("buf", 4), Store("buf", (Const(0),), Const(1))],
        )
        k = Kernel("serial", (ScalarParam("n", "long"),), [nest])
        res = hoist_automatic_arrays(k, nest)
        assert not res.applied
        assert k.local_arrays()

    def test_simd_refuses_scalar_mutation_in_the_leaf(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [
                Loop(
                    "j",
                    Const(0),
                    Sym("n"),
                    [Assign("flag", Const(1))],
                )
            ],
        )
        k = Kernel("flagged", (ScalarParam("n", "long"),), [nest])
        nest.parallel = True
        res = simd_innermost(k, nest, TransformPolicy())
        assert not res.applied
        assert "mutates across lanes" in res.detail

    def test_simd_marks_clean_leaves(self):
        k = _copy2d()
        nest = k.body[0]
        nest.parallel = True
        res = simd_innermost(k, nest, TransformPolicy())
        assert res.applied
        assert nest.body[0].simd


class TestProductionDerivations:
    """The engine's verdicts on the real kernels must match the
    hand-written predecessors' annotations."""

    def test_advect_stage_derives_collapse2_plus_simd(self):
        from repro.wrf.cstencil import build_advect_ir

        plan = plan_offload(build_advect_ir())
        nests = plan.kernel.loops()
        assert len(nests) == 1
        assert nests[0].parallel
        assert nests[0].collapse == 2
        leaves = [
            lp for lp in transform._leaf_loops(nests[0]) if lp.simd
        ]
        assert leaves, "inner n-loops vectorized"

    def test_sed_sweep_is_refused_a_parallel_annotation(self):
        from repro.fsbm.ckernels import build_sed_sweep_ir

        plan = plan_offload(build_sed_sweep_ir())
        assert not any(lp.parallel for lp in plan.kernel.loops())
        reports = list(plan.reports.values())
        assert any(r.parallel_depth == 0 for r in reports)

    def test_remap_scatter_stays_serial_under_the_depth_floor(self):
        from repro.fsbm.ckernels import build_remap_scatter_ir

        plan = plan_offload(build_remap_scatter_ir())
        assert not any(lp.parallel for lp in plan.kernel.loops())

    def test_summary_renders_the_derivation(self):
        from repro.wrf.cstencil import build_advect_ir

        text = plan_offload(build_advect_ir()).summary()
        assert "transform plan for kernel 'advect_stage'" in text
        assert "collapse" in text
