"""The typed loop-nest IR: expressions, statements, registry."""

import pytest

from repro.codee import loopir
from repro.codee.loopir import (
    ArrayParam,
    Bin,
    Const,
    Kernel,
    Load,
    Loop,
    ScalarParam,
    Store,
    Sym,
    as_expr,
    expr_loads,
    expr_syms,
    subst,
    walk_ir,
)


class TestExpressions:
    def test_operator_sugar_builds_trees(self):
        a, b = Sym("a"), Sym("b")
        assert a + b == Bin("+", a, b)
        assert a * 2 == Bin("*", a, Const(2))
        assert 1 - a == Bin("-", Const(1), a)
        assert (-a).op == "-"
        assert a.lt(b) == Bin("<", a, b)
        assert a.logical_and(b) == Bin("&&", a, b)

    def test_structural_equality(self):
        assert Sym("x") + 1 == Sym("x") + 1
        assert Sym("x") + 1 != Sym("x") + 2

    def test_as_expr_coercion(self):
        assert as_expr(3) == Const(3)
        assert as_expr(2.5) == Const(2.5)
        assert as_expr("n") == Sym("n")
        with pytest.raises(TypeError, match="bool"):
            as_expr(True)

    def test_walk_and_queries(self):
        e = Load("a", (Sym("i"),)) + Sym("k") * Const(2)
        assert expr_syms(e) == {"i", "k"}
        assert [ld.array for ld in expr_loads(e)] == ["a"]
        assert sum(1 for _ in walk_ir(e)) == 6

    def test_subst_reaches_subscripts(self):
        e = Load("a", (Sym("i") + 1,))
        out = subst(e, {"i": Sym("j")})
        assert out == Load("a", (Sym("j") + 1,))


class TestLoops:
    def _nest(self):
        inner = Loop("j", Const(0), Sym("n"), [])
        return Loop("i", Const(0), Sym("n"), [inner]), inner

    def test_perfect_nest_chain(self):
        outer, inner = self._nest()
        assert outer.nest_chain() == [outer, inner]
        assert outer.nest_vars() == ["i", "j"]
        assert outer.nest_depth() == 2

    def test_imperfect_nest_stops_the_chain(self):
        inner = Loop("j", Const(0), Sym("n"), [])
        outer = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Store("a", (Sym("i"),), Const(0)), inner],
        )
        assert outer.nest_depth() == 1


class TestKernel:
    def _kernel(self):
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Store("out", (Sym("i"),), Load("src", (Sym("i"),)))],
        )
        return Kernel(
            name="copy1d",
            params=(
                ArrayParam("src", strides=(Const(1),)),
                ArrayParam("out", strides=(Const(1),), intent="out"),
                ScalarParam("n", "long"),
            ),
            body=[nest],
        )

    def test_param_lookup(self):
        k = self._kernel()
        assert set(k.arrays()) == {"src", "out"}
        assert set(k.scalars()) == {"n"}
        assert k.param("n").ctype == "long"
        with pytest.raises(KeyError):
            k.param("missing")

    def test_statement_lines_are_preorder_and_stable(self):
        k = self._kernel()
        lines = k.statement_lines()
        nest = k.body[0]
        assert lines[id(nest)] == 1
        assert lines[id(nest.body[0])] == 2
        assert k.statement_lines() == lines


class TestRegistry:
    def test_production_kernels_registered(self):
        names = set(loopir.registered_kernels())
        assert {"advect_stage", "sed_sweep", "remap_scatter"} <= names
        assert "broken_offload_ir" in names

    def test_fixture_excluded_from_gate(self):
        gated = loopir.gate_kernels()
        assert "broken_offload_ir" not in gated
        assert "advect_stage" in gated

    def test_final_kernel_applies_the_transform(self):
        spec = loopir.registered_kernels()["advect_stage"]
        kernel = spec.final_kernel()
        assert any(lp.parallel for lp in kernel.loops())

    def test_fixture_spec_is_fixed(self):
        spec = loopir.registered_kernels()["broken_offload_ir"]
        assert spec.plan() is None
        assert spec.final_kernel().loops()[0].parallel
