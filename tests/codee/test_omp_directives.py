"""Sentinel-text -> directive-object parsing (repro.codee.omp_directives)."""

import pytest

from repro.codee.omp_directives import (
    DeclareTarget,
    DirectiveSyntaxError,
    SimdDirective,
    TargetEnterData,
    TargetExitData,
    TargetTeamsDistributeParallelDo,
    UnknownDirective,
    parse_omp_directive,
)
from repro.core.directives import MapType


class TestCombinedConstruct:
    def test_listing4_style_directive(self):
        d = parse_omp_directive(
            "!$omp target teams distribute parallel do collapse(2) "
            "private(ckern_1, ckern_2) "
            "map(to: xl, xi) map(from: cwll) map(tofrom: acc)"
        )
        assert isinstance(d, TargetTeamsDistributeParallelDo)
        assert d.collapse == 2
        assert d.private == ("ckern_1", "ckern_2")
        by_type = {m.map_type: m.names for m in d.maps}
        assert by_type[MapType.TO] == ("xl", "xi")
        assert by_type[MapType.FROM] == ("cwll",)
        assert by_type[MapType.TOFROM] == ("acc",)

    def test_defaults_without_clauses(self):
        d = parse_omp_directive("!$omp target teams distribute parallel do")
        assert d.collapse == 1
        assert d.maps == () and d.private == ()

    def test_map_without_type_defaults_tofrom(self):
        d = parse_omp_directive(
            "!$omp target teams distribute parallel do map(a, b)"
        )
        assert d.maps[0].map_type is MapType.TOFROM
        assert d.maps[0].names == ("a", "b")

    def test_map_array_sections_stripped_to_base_names(self):
        d = parse_omp_directive(
            "!$omp target teams distribute parallel do "
            "map(to: fl1(1:nkr, 1:icemax))"
        )
        assert d.maps[0].names == ("fl1",)

    def test_reduction_clause(self):
        d = parse_omp_directive(
            "!$omp target teams distribute parallel do reduction(+: s, t)"
        )
        assert d.reductions[0].op == "+"
        assert d.reductions[0].names == ("s", "t")

    def test_reduction_min(self):
        d = parse_omp_directive(
            "!$omp target teams distribute parallel do reduction(min: lo)"
        )
        assert d.reductions[0].op == "min"

    def test_render_round_trip(self):
        text = (
            "!$omp target teams distribute parallel do collapse(2) "
            "private(k1) reduction(+: s) map(to: a) map(from: b)"
        )
        d = parse_omp_directive(text)
        again = parse_omp_directive(d.render().replace("&\n!$omp ", ""))
        assert again == d

    def test_unknown_clause_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_omp_directive(
                "!$omp target teams distribute parallel do schedule(static)"
            )

    def test_bad_collapse_argument_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_omp_directive(
                "!$omp target teams distribute parallel do collapse(two)"
            )

    def test_bad_reduction_op_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_omp_directive(
                "!$omp target teams distribute parallel do reduction(xor: s)"
            )


class TestDataDirectives:
    def test_enter_data(self):
        d = parse_omp_directive(
            "!$omp target enter data map(alloc: fl1_temp) map(to: xl)"
        )
        assert isinstance(d, TargetEnterData)
        types = {m.map_type for m in d.maps}
        assert types == {MapType.ALLOC, MapType.TO}

    def test_exit_data(self):
        d = parse_omp_directive("!$omp target exit data map(release: fl1_temp)")
        assert isinstance(d, TargetExitData)
        assert d.maps[0].map_type is MapType.RELEASE

    def test_enter_data_rejects_non_map_clauses(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_omp_directive("!$omp target enter data private(x)")


class TestOtherDirectives:
    def test_declare_target(self):
        assert isinstance(
            parse_omp_directive("!$omp declare target"), DeclareTarget
        )

    def test_simd(self):
        assert isinstance(parse_omp_directive("!$omp simd"), SimdDirective)

    def test_unrecognized_directive_is_unknown(self):
        d = parse_omp_directive("!$omp barrier")
        assert isinstance(d, UnknownDirective)

    def test_case_insensitive(self):
        d = parse_omp_directive(
            "!$OMP TARGET TEAMS DISTRIBUTE PARALLEL DO COLLAPSE(3)"
        )
        assert isinstance(d, TargetTeamsDistributeParallelDo)
        assert d.collapse == 3

    def test_non_sentinel_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_omp_directive("do i = 1, n")
