"""Fortran-subset lexer: tokens, continuations, directives, comments."""

import pytest

from repro.codee.lexer import Token, TokenKind, tokenize
from repro.errors import FortranSyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text) if t.kind is not TokenKind.NEWLINE][:-1]


def texts(text):
    return [
        t.text
        for t in tokenize(text)
        if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)
    ]


def test_simple_assignment():
    toks = texts("x = y + 1.5")
    assert toks == ["x", "=", "y", "+", "1.5"]


def test_keywords_case_insensitive():
    toks = tokenize("DO i = 1, NKR")
    assert toks[0].kind is TokenKind.KEYWORD
    assert toks[0].lowered == "do"


def test_array_reference_and_double_colon():
    toks = texts("real, pointer :: fl1(:)")
    assert "::" in toks
    assert ":" in toks


def test_exponent_numbers():
    toks = texts("x = 1.0e-3 + 2.5d0")
    assert "1.0e-3" in toks
    assert "2.5d0" in toks


def test_comments_stripped():
    toks = texts("x = 1 ! set x\n! whole line comment\ny = 2")
    assert toks == ["x", "=", "1", "y", "=", "2"]


def test_continuation_joined():
    toks = texts("x = a + &\n    b")
    assert toks == ["x", "=", "a", "+", "b"]
    lines = {t.line for t in tokenize("x = a + &\n    b") if t.text == "b"}
    assert lines == {1}  # attributed to the statement's first line


def test_omp_directive_preserved_whole():
    toks = tokenize("!$omp target teams distribute\ndo i = 1, 5\nenddo")
    assert toks[0].kind is TokenKind.DIRECTIVE
    assert "target teams" in toks[0].text


def test_omp_directive_continuation_merged():
    src = "!$omp target teams distribute &\n!$omp parallel do\nx = 1"
    toks = tokenize(src)
    assert toks[0].kind is TokenKind.DIRECTIVE
    assert "parallel do" in toks[0].text
    assert "&" not in toks[0].text


def test_relational_operators():
    toks = texts("if (t_old(i,k,j) > 193.15) then")
    assert ">" in toks


def test_dotted_operators():
    toks = texts("if (a .and. b .or. .not. c) then")
    assert ".and." in toks and ".or." in toks and ".not." in toks


def test_pointer_assignment_operator():
    toks = tokenize("fl1 => fl1_temp(:, i, k, j)")
    assert any(t.kind is TokenKind.POINT_TO for t in toks)


def test_unexpected_character_reports_position():
    with pytest.raises(FortranSyntaxError, match="line 2"):
        tokenize("x = 1\ny = @")


def test_dangling_continuation_rejected():
    with pytest.raises(FortranSyntaxError, match="continuation"):
        tokenize("x = 1 + &")


def test_strings_with_embedded_bang():
    toks = texts("msg = 'hello ! not a comment'")
    assert toks[-1] == "'hello ! not a comment'"
