"""The PWR020 checker: automatic arrays in declare-target routines."""

from repro.codee import sources
from repro.codee.checks import check_device_automatic_arrays, run_checks
from repro.codee.fparser import parse_source


def test_listing7_flagged():
    """The original coal_bott_new (Listing 7) carries the smell."""
    sf = parse_source(sources.COAL_BOTT_ORIGINAL_SOURCE, "coal_bott.f90")
    findings = check_device_automatic_arrays(sf)
    assert findings, "automatic arrays in a device routine must be flagged"
    names_flagged = {f.detail.split()[0] for f in findings}
    assert "fl1" in names_flagged
    assert all(f.check_id == "PWR020" for f in findings)
    assert any("NV_ACC_CUDA_STACKSIZE" in f.detail for f in findings)


def test_listing8_pointer_rewrite_is_clean():
    """The temp_arrays pointer version (Listing 8) must NOT be flagged."""
    sf = parse_source(sources.COAL_BOTT_POINTER_SOURCE, "coal_bott_ptr.f90")
    assert check_device_automatic_arrays(sf) == []


def test_host_routine_with_arrays_not_flagged():
    """Automatic arrays are fine on the host — only device routines count."""
    src = (
        "subroutine host_work(n)\n"
        "  implicit none\n"
        "  integer, intent(in) :: n\n"
        "  real :: scratch(33)\n"
        "  scratch(1) = 0.0\n"
        "end subroutine host_work\n"
    )
    assert check_device_automatic_arrays(parse_source(src)) == []


def test_dummy_arrays_not_flagged():
    """Dummy-argument arrays are the caller's storage, not stack frames."""
    src = (
        "subroutine dev(fl, n)\n"
        "  implicit none\n"
        "!$omp declare target\n"
        "  integer, intent(in) :: n\n"
        "  real, intent(inout) :: fl(n)\n"
        "  fl(1) = 0.0\n"
        "end subroutine dev\n"
    )
    assert check_device_automatic_arrays(parse_source(src)) == []


def test_pwr020_in_full_run():
    sf = parse_source(sources.COAL_BOTT_ORIGINAL_SOURCE, "coal_bott.f90")
    ids = {f.check_id for f in run_checks(sf)}
    assert "PWR020" in ids
