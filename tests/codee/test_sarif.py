"""SARIF 2.1.0 emission and schema validation (repro.codee.sarif)."""

import json

import pytest

from repro.codee.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    _structural_errors,
    to_sarif,
    validate_sarif,
)
from repro.codee.sources import BROKEN_OFFLOAD_SOURCE
from repro.codee.verifier import CHECK_RULES, VerifierConfig, verify_text


@pytest.fixture(scope="module")
def violations():
    return verify_text(BROKEN_OFFLOAD_SOURCE, "broken.f90", VerifierConfig())


@pytest.fixture(scope="module")
def doc(violations):
    return to_sarif(violations)


class TestStructure:
    def test_version_and_schema_uri(self, doc):
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_tool_driver_declares_all_rules(self, doc):
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "codee-verify"
        assert {r["id"] for r in driver["rules"]} == set(CHECK_RULES)

    def test_one_result_per_violation(self, doc, violations):
        results = doc["runs"][0]["results"]
        assert len(results) == len(violations)
        for res, v in zip(results, violations):
            assert res["ruleId"] == v.check_id
            assert res["level"] == "error"
            assert v.detail in res["message"]["text"]
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == v.path
            assert loc["region"]["startLine"] == v.line

    def test_rule_index_points_into_rules_array(self, doc):
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        for res in doc["runs"][0]["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]

    def test_document_is_json_serializable(self, doc):
        assert json.loads(json.dumps(doc)) == doc


class TestValidation:
    def test_emitted_document_validates(self, doc):
        assert validate_sarif(doc) == []

    def test_empty_violation_list_validates(self):
        assert validate_sarif(to_sarif([])) == []

    def test_missing_version_rejected(self, doc):
        bad = {k: v for k, v in doc.items() if k != "version"}
        assert validate_sarif(bad) != []

    def test_bad_level_rejected(self, doc):
        bad = json.loads(json.dumps(doc))
        bad["runs"][0]["results"][0]["level"] = "catastrophic"
        assert validate_sarif(bad) != []

    def test_missing_message_rejected(self, doc):
        bad = json.loads(json.dumps(doc))
        del bad["runs"][0]["results"][0]["message"]
        assert validate_sarif(bad) != []

    def test_zero_start_line_rejected(self, doc):
        bad = json.loads(json.dumps(doc))
        region = bad["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        region["startLine"] = 0
        assert validate_sarif(bad) != []

    def test_structural_fallback_agrees_with_jsonschema(self, doc):
        """The dependency-free validator accepts what jsonschema accepts."""
        jsonschema = pytest.importorskip("jsonschema")
        errors = list(
            jsonschema.Draft7Validator(SARIF_SCHEMA).iter_errors(doc)
        )
        assert errors == []
        assert _structural_errors(doc) == []

    def test_structural_fallback_catches_broken_docs(self, doc):
        bad = json.loads(json.dumps(doc))
        bad["runs"][0]["results"][0]["level"] = "catastrophic"
        assert _structural_errors(bad) != []
        assert _structural_errors({"runs": []}) != []
