"""Checkers, screening, the offload rewriter, compile commands."""

import json

import pytest

from repro.codee import sources
from repro.codee.checks import format_checks_report, run_checks
from repro.codee.compile_commands import (
    fortran_units,
    load_compile_commands,
)
from repro.codee.fparser import parse_source
from repro.codee.rewrite import offload_rewrite
from repro.codee.screening import screen_file, screening_report
from repro.errors import CodeeError, RewriteError


class TestChecks:
    def test_legacy_onecond_flags_match_the_paper(self):
        """Sec. VIII: Codee flagged assumed-size arrays and missing
        intents in routines like onecond."""
        sf = parse_source(sources.legacy_onecond_source(), "onecond.f90")
        ids = {f.check_id for f in run_checks(sf)}
        assert "PWR007" in ids  # implicit none
        assert "PWR008" in ids  # assumed-size array
        assert "PWR001" in ids  # missing intent

    def test_kernals_ks_flags_global_writes_and_offload(self):
        sf = parse_source(sources.KERNALS_KS_SOURCE, "module_mp_fast_sbm.f90")
        findings = run_checks(sf)
        ids = {f.check_id for f in findings}
        assert "PWR014" in ids  # module variables written in loop
        assert "RMK015" in ids  # offload opportunity

    def test_clean_code_has_no_modernization_findings(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    a(i) = a(i) * 2.0\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        findings = run_checks(parse_source(src))
        assert not [f for f in findings if f.category == "modernization"]

    def test_noncontiguous_access_flagged(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n, n)\n"
            "  integer :: i, j\n"
            "  do i = 1, n\n"
            "    do j = 1, n\n"
            "      a(i, j) = 0.0\n"
            "    enddo\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        ids = {f.check_id for f in run_checks(parse_source(src))}
        assert "PWR010" in ids

    def test_report_rendering(self):
        sf = parse_source(sources.legacy_onecond_source(), "onecond.f90")
        text = format_checks_report(run_checks(sf))
        assert "PWR008" in text and "summary:" in text


class TestScreening:
    def test_metrics_counted(self):
        fs = screen_file(sources.KERNALS_KS_SOURCE, "module_mp_fast_sbm.f90")
        assert fs.num_modules == 1
        assert fs.num_routines == 1
        assert fs.num_loops == 2
        assert fs.max_nest_depth == 2
        assert fs.num_offload_opportunities >= 1

    def test_ranking_puts_opportunity_rich_files_first(self):
        rep = screening_report(
            {
                "onecond.f90": sources.legacy_onecond_source(),
                "module_mp_fast_sbm.f90": sources.KERNALS_KS_SOURCE,
            }
        )
        assert rep.ranked()[0].path == "module_mp_fast_sbm.f90"
        assert rep.total_loc > 0
        assert "codee screening report" in rep.format_table()


class TestRewrite:
    def _loop_line(self):
        sf = parse_source(sources.KERNALS_KS_SOURCE)
        return sf.modules[0].routines[0].loops()[0].line

    def test_rewrite_reproduces_listing4(self):
        line = self._loop_line()
        res = offload_rewrite(sources.KERNALS_KS_SOURCE, line=line)
        text = res.source
        assert "! Codee: Loop modified" in text
        assert "!$omp target teams distribute" in text
        assert "!$omp parallel do" in text
        assert "map(from: cwlg, cwll, cwls)" in text
        assert "!$omp simd" in text  # inner loop vectorized
        assert "private(ckern_1, ckern_2)" in text

    def test_rewritten_source_still_parses(self):
        line = self._loop_line()
        res = offload_rewrite(sources.KERNALS_KS_SOURCE, line=line)
        sf = parse_source(res.source)
        loop = sf.modules[0].routines[0].loops()[0]
        assert loop.directives, "directive attached to the loop"
        assert loop.innermost().directives

    def test_rewrite_refuses_unsound_loops(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 2, n\n"
            "    a(i) = a(i-1)\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        with pytest.raises(RewriteError, match="not provably parallel"):
            offload_rewrite(src, line=6)

    def test_collapse_override(self):
        line = self._loop_line()
        res = offload_rewrite(
            sources.KERNALS_KS_SOURCE, line=line, collapse=2, simd_inner=False
        )
        assert res.directive.collapse == 2
        assert "collapse(2)" in res.source

    def test_no_loop_at_line_rejected(self):
        with pytest.raises(RewriteError):
            offload_rewrite("subroutine s()\nend subroutine s\n", line=1)

    def test_modified_reflects_an_actual_change(self):
        line = self._loop_line()
        res = offload_rewrite(sources.KERNALS_KS_SOURCE, line=line)
        assert res.modified
        assert res.source != res.original == sources.KERNALS_KS_SOURCE

    def test_reduction_clause_emitted(self):
        src = (
            "subroutine s(a, total, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(in) :: a(n)\n"
            "  real, intent(inout) :: total\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    total = total + a(i)\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        res = offload_rewrite(src, line=7)
        assert "reduction(+: total)" in res.source
        assert "total" not in res.directive.private

    def test_rewrite_is_idempotent(self):
        first = offload_rewrite(
            sources.KERNALS_KS_SOURCE, line=self._loop_line()
        )
        new_line = (
            parse_source(first.source).modules[0].routines[0].loops()[0].line
        )
        second = offload_rewrite(first.source, line=new_line)
        assert not second.modified
        assert second.source == first.source
        assert first.source.count("!$omp target teams") == 1

    def test_collapse_default_capped_at_three(self):
        """A 4-deep nest still defaults to the paper's collapse(3)."""
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(out) :: a(n, n, n, n)\n"
            "  integer :: i, j, k, l\n"
            "  do i = 1, n\n"
            "    do j = 1, n\n"
            "      do k = 1, n\n"
            "        do l = 1, n\n"
            "          a(l, k, j, i) = 0.0\n"
            "        enddo\n"
            "      enddo\n"
            "    enddo\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        res = offload_rewrite(src, line=6)
        assert res.directive.collapse == 3

    def test_line_before_first_loop_rejected(self):
        """_locate_loop only searches at-or-above the given line."""
        with pytest.raises(RewriteError, match="no do-loop"):
            offload_rewrite(sources.KERNALS_KS_SOURCE, line=1)

    def test_line_inside_inner_nest_selects_inner_loop(self):
        sf = parse_source(sources.KERNALS_KS_SOURCE)
        outer = sf.modules[0].routines[0].loops()[0]
        inner = outer.innermost()
        res = offload_rewrite(
            sources.KERNALS_KS_SOURCE, line=inner.line + 1
        )
        assert res.loop_line == inner.line

    def test_bare_routine_loop_located(self):
        """_locate_loop also covers routines outside any module."""
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    a(i) = a(i) * 2.0\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        res = offload_rewrite(src, line=6)
        assert res.loop_line == 6
        assert res.modified

    def test_modified_false_when_output_equals_input(self):
        from repro.codee.rewrite import RewriteResult

        line = self._loop_line()
        res = offload_rewrite(sources.KERNALS_KS_SOURCE, line=line)
        unchanged = RewriteResult(
            source=res.source,
            directive=res.directive,
            report=res.report,
            loop_line=res.loop_line,
            original=res.source,
        )
        assert not unchanged.modified


class TestCompileCommands:
    def test_load_and_filter(self, tmp_path):
        db = [
            {
                "file": "module_mp_fast_sbm.f90",
                "directory": "/build/phys",
                "arguments": ["ftn", "-O2", "-Iinc", "-DDM_PARALLEL", "-c",
                              "module_mp_fast_sbm.f90"],
            },
            {
                "file": "tools.c",
                "directory": "/build",
                "command": "cc -I /usr/include -c tools.c",
            },
        ]
        path = tmp_path / "compile_commands.json"
        path.write_text(json.dumps(db))
        cmds = load_compile_commands(path)
        assert len(cmds) == 2
        f_units = fortran_units(cmds)
        assert len(f_units) == 1
        assert f_units[0].include_dirs == ("inc",)
        assert f_units[0].defines == ("DM_PARALLEL",)
        assert f_units[0].compiler == "ftn"
        assert str(f_units[0].resolved_path()).startswith("/build/phys")
        # 'command' form parsed with shlex, separate -I style.
        assert cmds[1].include_dirs == ("/usr/include",)

    def test_bad_database_rejected(self, tmp_path):
        path = tmp_path / "cc.json"
        path.write_text("{}")
        with pytest.raises(CodeeError):
            load_compile_commands(path)
        path.write_text(json.dumps([{"file": "x.f90"}]))
        with pytest.raises(CodeeError):
            load_compile_commands(path)
        with pytest.raises(CodeeError):
            load_compile_commands(tmp_path / "missing.json")
