"""The five static checkers of ``codee verify`` (repro.codee.verifier)."""

import pytest

from repro.codee.fparser import parse_source
from repro.codee.rewrite import offload_rewrite
from repro.codee.sources import BROKEN_OFFLOAD_SOURCE, KERNALS_KS_SOURCE
from repro.codee.verifier import (
    CHECK_COLLAPSE,
    CHECK_MAP,
    CHECK_PAIR,
    CHECK_RACE,
    CHECK_STACK,
    VerifierConfig,
    has_errors,
    sort_violations,
    verify_text,
)
from repro.core.env import PAPER_ENV


def verify(text, **config):
    return verify_text(text, "test.f90", VerifierConfig(**config))


REGION_TEMPLATE = """\
module m
  implicit none
  integer, parameter :: n = 16
  real :: a(n, n), b(n, n)
contains
  subroutine work()
    implicit none
    integer :: i, j
    real :: s
{directive}
    do j = 1, n
      do i = 1, n
{body}
      enddo
    enddo
  end subroutine work
end module m
"""


def region(directive, body):
    return REGION_TEMPLATE.format(
        directive="\n".join(f"{d}" for d in directive.splitlines()),
        body="\n".join(f"        {line}" for line in body.splitlines()),
    )


class TestAcceptance:
    """The ISSUE's acceptance criteria, verbatim."""

    def test_rewriter_emitted_directive_verifies_clean(self):
        loop_line = (
            parse_source(KERNALS_KS_SOURCE)
            .modules[0]
            .routines[0]
            .loops()[0]
            .line
        )
        annotated = offload_rewrite(KERNALS_KS_SOURCE, line=loop_line).source
        assert verify_text(annotated, "kernals.f90", VerifierConfig()) == []

    def test_broken_fixture_seeds_exactly_the_five_violations(self):
        violations = verify_text(
            BROKEN_OFFLOAD_SOURCE, "broken.f90", VerifierConfig()
        )
        assert [v.check_id for v in violations] == [
            CHECK_RACE,
            CHECK_MAP,
            CHECK_COLLAPSE,
            CHECK_STACK,
            CHECK_PAIR,
        ]
        by_id = {v.check_id: v for v in violations}
        assert by_id[CHECK_RACE].routine == "race_region"
        assert "shared_tmp" in by_id[CHECK_RACE].detail
        assert by_id[CHECK_MAP].routine == "missing_map_region"
        assert "unmapped" in by_id[CHECK_MAP].detail
        assert by_id[CHECK_COLLAPSE].routine == "triangular_region"
        assert "non-rectangular" in by_id[CHECK_COLLAPSE].detail
        assert by_id[CHECK_STACK].routine == "stack_region"
        assert "big_autos" in by_id[CHECK_STACK].detail
        assert by_id[CHECK_PAIR].routine == "leaky_setup"
        assert has_errors(violations)


class TestRaceChecker:
    def test_shared_scalar_write_flagged(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp map(tofrom: a)",
                "s = a(i, j)\na(i, j) = s * 2.0",
            )
        )
        assert [v.check_id for v in vs] == [CHECK_RACE]
        assert "s" in vs[0].detail

    def test_private_clause_clears_it(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp private(s) map(tofrom: a)",
                "s = a(i, j)\na(i, j) = s * 2.0",
            )
        )
        assert vs == []

    def test_sum_reduction_pattern_recognized(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp reduction(+: s) map(to: a)",
                "s = s + a(i, j)",
            )
        )
        assert vs == []

    def test_min_reduction_pattern_recognized(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp reduction(min: s) map(to: a)",
                "s = min(s, a(i, j))",
            )
        )
        assert vs == []

    def test_array_write_missing_collapsed_index_flagged(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp map(to: a) map(tofrom: b)",
                "b(i, 1) = a(i, j)",
            )
        )
        assert [v.check_id for v in vs] == [CHECK_RACE]
        assert "b" in vs[0].detail


class TestMapChecker:
    def test_unmapped_array_flagged(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp map(tofrom: a)",
                "a(i, j) = b(i, j)",
            )
        )
        assert [v.check_id for v in vs] == [CHECK_MAP]
        assert "b" in vs[0].detail

    def test_enter_data_allocation_counts_as_coverage(self):
        text = region(
            "!$omp target teams distribute parallel do collapse(2) &\n"
            "!$omp map(tofrom: a)",
            "a(i, j) = b(i, j)",
        ).replace(
            "  subroutine work()",
            "  subroutine setup()\n"
            "    implicit none\n"
            "!$omp target enter data map(alloc: b)\n"
            "  end subroutine setup\n"
            "\n"
            "  subroutine teardown()\n"
            "    implicit none\n"
            "!$omp target exit data map(release: b)\n"
            "  end subroutine teardown\n"
            "\n"
            "  subroutine work()",
        )
        assert verify(text) == []

    def test_map_from_without_full_overwrite_flagged(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp map(to: a) map(from: b)",
                "if (a(i, j) > 0.0) then\n  b(i, j) = a(i, j)\nendif",
            )
        )
        assert [v.check_id for v in vs] == [CHECK_MAP]
        assert "from" in vs[0].detail

    def test_map_from_with_full_overwrite_clean(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp map(to: a) map(from: b)",
                "b(i, j) = a(i, j)",
            )
        )
        assert vs == []

    def test_map_to_written_array_flagged(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp map(to: a, b)",
                "b(i, j) = a(i, j)",
            )
        )
        assert [v.check_id for v in vs] == [CHECK_MAP]


class TestCollapseChecker:
    def test_collapse_deeper_than_nest_flagged(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(3) &\n"
                "!$omp map(to: a) map(from: b)",
                "b(i, j) = a(i, j)",
            )
        )
        assert [v.check_id for v in vs] == [CHECK_COLLAPSE]
        assert "depth" in vs[0].detail

    def test_rectangular_collapse2_clean(self):
        vs = verify(
            region(
                "!$omp target teams distribute parallel do collapse(2) &\n"
                "!$omp map(to: a) map(from: b)",
                "b(i, j) = a(i, j)",
            )
        )
        assert vs == []

    def test_inner_carried_dependence_flagged(self):
        text = (
            "subroutine smooth(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n, n)\n"
            "  integer :: i, j\n"
            "!$omp target teams distribute parallel do collapse(2) &\n"
            "!$omp map(tofrom: a)\n"
            "  do j = 1, n\n"
            "    do i = 2, n\n"
            "      a(i, j) = a(i - 1, j)\n"
            "    enddo\n"
            "  enddo\n"
            "end subroutine smooth\n"
        )
        vs = verify(text)
        assert CHECK_COLLAPSE in {v.check_id for v in vs}


class TestStackChecker:
    STACK_TEXT = BROKEN_OFFLOAD_SOURCE

    def test_default_env_fires(self):
        ids = {v.check_id for v in verify(self.STACK_TEXT)}
        assert CHECK_STACK in ids

    def test_paper_env_budgets_silence_it(self):
        config = VerifierConfig.from_env(PAPER_ENV)
        ids = {
            v.check_id
            for v in verify_text(self.STACK_TEXT, "broken.f90", config)
        }
        assert CHECK_STACK not in ids

    def test_big_heap_budget_silences_it(self):
        ids = {
            v.check_id
            for v in verify(self.STACK_TEXT, heap_bytes=2 * 1024**3)
        }
        assert CHECK_STACK not in ids


class TestSorting:
    def test_violations_sorted_by_path_line_check_id(self):
        vs = verify_text(BROKEN_OFFLOAD_SOURCE, "broken.f90", VerifierConfig())
        keys = [(v.path, v.line, v.check_id) for v in vs]
        assert keys == sorted(keys)

    def test_sort_violations_is_deterministic(self):
        vs = verify_text(BROKEN_OFFLOAD_SOURCE, "broken.f90", VerifierConfig())
        assert sort_violations(list(reversed(vs))) == vs
