"""The repo lint gate: every embedded Fortran source must verify clean,
and every registered (gated) loop-IR kernel must verify clean *and*
compile to a loadable module.

Run just this gate with ``pytest -m verify_sources``; it is also what
``python -m repro.codee verify --all`` executes from the CLI.
"""

import json

import pytest

from repro.codee import irverify, loopir
from repro.codee.cli import main
from repro.codee.sources import BROKEN_OFFLOAD_SOURCE, embedded_sources
from repro.codee.verifier import VerifierConfig, verify_text

pytestmark = pytest.mark.verify_sources

SOURCES = embedded_sources()
IR_KERNELS = sorted(loopir.gate_kernels())


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_embedded_source_verifies_clean(name):
    violations = verify_text(SOURCES[name], name, VerifierConfig())
    assert violations == [], "\n".join(v.render() for v in violations)


@pytest.mark.parametrize("name", IR_KERNELS)
def test_ir_kernel_verifies_clean(name):
    spec = loopir.gate_kernels()[name]
    violations = irverify.verify_kernel(spec.final_kernel(), VerifierConfig())
    assert violations == [], "\n".join(v.render() for v in violations)


def test_production_ir_modules_compile(tmp_path):
    """The gate compiles every gated kernel, not just the ones the
    production modules happen to load on this machine."""
    from repro.codee import cgen

    registry = loopir.gate_kernels()
    kernels = [registry[name].final_kernel() for name in IR_KERNELS]
    module = cgen.build_module(
        "verify_gate_kernels", kernels, build_dir=tmp_path
    )
    lib = module.load()
    if module.load_error and "no working C compiler" in module.load_error:
        pytest.skip(module.load_error)
    assert lib is not None, module.load_error


def test_broken_fixture_is_not_part_of_the_gate():
    assert BROKEN_OFFLOAD_SOURCE not in SOURCES.values()
    assert "broken_offload_ir" in loopir.registered_kernels()
    assert "broken_offload_ir" not in loopir.gate_kernels()


def test_broken_ir_fixture_flagged_in_every_format(capsys):
    assert main(["verify", "--ir", "broken_offload_ir"]) == 2
    assert "[VFY006]" in capsys.readouterr().out

    assert main(["verify", "--ir", "broken_offload_ir", "--format", "json"]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert any(v["check_id"] == "VFY006" for v in payload)

    assert main(["verify", "--ir", "broken_offload_ir", "--format", "sarif"]) == 2
    sarif = json.loads(capsys.readouterr().out)
    results = sarif["runs"][0]["results"]
    assert any(r["ruleId"] == "VFY006" for r in results)


def test_broken_ir_fixture_refused_by_build_module(tmp_path):
    from repro.codee import cgen
    from repro.errors import IRVerificationError

    fixture = loopir.registered_kernels()["broken_offload_ir"]
    with pytest.raises(IRVerificationError, match="VFY006"):
        cgen.build_module(
            "broken_offload", [fixture.final_kernel()], build_dir=tmp_path
        )


def test_cli_verify_all_passes():
    assert main(["verify", "--all"]) == 0
