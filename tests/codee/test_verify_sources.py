"""The repo lint gate: every embedded Fortran source must verify clean.

Run just this gate with ``pytest -m verify_sources``; it is also what
``python -m repro.codee verify --all`` executes from the CLI.
"""

import pytest

from repro.codee.cli import main
from repro.codee.sources import BROKEN_OFFLOAD_SOURCE, embedded_sources
from repro.codee.verifier import VerifierConfig, verify_text

pytestmark = pytest.mark.verify_sources

SOURCES = embedded_sources()


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_embedded_source_verifies_clean(name):
    violations = verify_text(SOURCES[name], name, VerifierConfig())
    assert violations == [], "\n".join(v.render() for v in violations)


def test_broken_fixture_is_not_part_of_the_gate():
    assert BROKEN_OFFLOAD_SOURCE not in SOURCES.values()


def test_cli_verify_all_passes():
    assert main(["verify", "--all"]) == 0
