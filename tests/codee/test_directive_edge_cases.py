"""Lexer/parser edge cases around ``!$omp`` sentinels and loop nesting."""

import pytest

from repro.codee.fast import DoLoop
from repro.codee.fparser import parse_source
from repro.codee.lexer import TokenKind, tokenize
from repro.codee.omp_directives import (
    TargetTeamsDistributeParallelDo,
    parse_omp_directive,
)
from repro.core.directives import MapType
from repro.errors import FortranSyntaxError


class TestSentinelContinuations:
    def test_three_way_continuation_joins_into_one_directive(self):
        src = (
            "!$omp target teams distribute &\n"
            "!$omp parallel do collapse(2) &\n"
            "!$omp map(to: a) map(from: b)\n"
            "x = 1\n"
        )
        toks = tokenize(src)
        assert toks[0].kind is TokenKind.DIRECTIVE
        assert "&" not in toks[0].text
        d = parse_omp_directive(toks[0].text)
        assert isinstance(d, TargetTeamsDistributeParallelDo)
        assert d.collapse == 2 and len(d.maps) == 2

    def test_continued_directive_keeps_first_line_number(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "!$omp target teams distribute &\n"
            "!$omp parallel do map(tofrom: a)\n"
            "  do i = 1, n\n"
            "    a(i) = a(i) + 1.0\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        toks = [t for t in tokenize(src) if t.kind is TokenKind.DIRECTIVE]
        assert len(toks) == 1
        assert toks[0].line == 6

    def test_multi_clause_directive_split_across_lines_attaches_to_loop(self):
        src = (
            "subroutine s(a, b, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(in) :: a(n, n)\n"
            "  real, intent(out) :: b(n, n)\n"
            "  integer :: i, j\n"
            "  real :: t\n"
            "!$omp target teams distribute parallel do &\n"
            "!$omp collapse(2) private(t) &\n"
            "!$omp map(to: a) &\n"
            "!$omp map(from: b)\n"
            "  do j = 1, n\n"
            "    do i = 1, n\n"
            "      t = a(i, j)\n"
            "      b(i, j) = t * 2.0\n"
            "    enddo\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        sf = parse_source(src, "split.f90")
        loop = sf.routines[0].loops()[0]
        assert len(loop.directives) == 1
        d = parse_omp_directive(loop.directives[0].text)
        assert d.collapse == 2
        assert d.private == ("t",)
        assert {m.map_type for m in d.maps} == {MapType.TO, MapType.FROM}

    def test_dangling_sentinel_continuation_rejected(self):
        """A '&' not followed by another sentinel line never joins; the
        leftover ampersand is a directive syntax error."""
        from repro.codee.omp_directives import DirectiveSyntaxError

        toks = tokenize("!$omp target teams distribute &\nx = 1\n")
        assert toks[0].kind is TokenKind.DIRECTIVE
        assert toks[0].text.endswith("&")
        with pytest.raises(DirectiveSyntaxError, match="dangling"):
            parse_omp_directive(toks[0].text)


class TestEndDoMatching:
    NEST = (
        "subroutine s(a, n)\n"
        "  implicit none\n"
        "  integer, intent(in) :: n\n"
        "  real, intent(inout) :: a(n, n, n)\n"
        "  integer :: i, k, j\n"
        "  do j = 1, n\n"
        "    do k = 1, n\n"
        "      do i = 1, n\n"
        "        a(i, k, j) = 0.0\n"
        "      {end1}\n"
        "    {end2}\n"
        "  {end3}\n"
        "end subroutine s\n"
    )

    @pytest.mark.parametrize(
        "ends",
        [
            ("enddo", "enddo", "enddo"),
            ("end do", "end do", "end do"),
            ("end do", "enddo", "end do"),
        ],
    )
    def test_nested_loops_close_with_either_spelling(self, ends):
        src = self.NEST.format(end1=ends[0], end2=ends[1], end3=ends[2])
        sf = parse_source(src, "nest.f90")
        loop = sf.routines[0].loops()[0]
        assert loop.nest_depth() == 3
        assert [l.var for l in _nest_chain(loop)] == ["j", "k", "i"]

    def test_missing_end_do_rejected(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    a(i) = 0.0\n"
            "end subroutine s\n"
        )
        with pytest.raises(FortranSyntaxError):
            parse_source(src, "open.f90")


def _nest_chain(loop):
    chain = [loop]
    cur = loop
    while True:
        inner = [s for s in cur.body if isinstance(s, DoLoop)]
        if len(inner) != 1:
            return chain
        cur = inner[0]
        chain.append(cur)
