"""C emission from the loop IR: association order, addressing, pragmas."""

import ctypes

import numpy as np
import pytest

from repro.codee import cgen
from repro.codee.loopir import (
    ArrayParam,
    Const,
    Kernel,
    Let,
    Load,
    Loop,
    ScalarParam,
    Store,
    Sym,
    Select,
)


def _elementwise(parallel=False, reductions=()):
    i = Sym("i")
    nest = Loop(
        "i",
        Const(0),
        Sym("n"),
        [Store("out", (i,), Load("src", (i,)) * 2.0 + 1.0)],
        parallel=parallel,
        reductions=tuple(reductions),
    )
    return Kernel(
        name="scale1d",
        params=(
            ArrayParam("src", strides=(Const(1),)),
            ArrayParam("out", strides=(Const(1),), intent="out"),
            ScalarParam("n", "long"),
        ),
        body=[nest],
    )


class TestEmission:
    def test_expressions_fully_parenthesized_in_ir_order(self):
        text = cgen.emit_kernel(_elementwise())
        assert "((src[i] * 2.0) + 1.0)" in text

    def test_signature_intents(self):
        text = cgen.emit_kernel(_elementwise())
        assert "const double *restrict src" in text
        assert "double *restrict out" in text
        assert "long n" in text

    def test_strided_addressing(self):
        i, j = Sym("i"), Sym("j")
        k = Kernel(
            "addr",
            (ArrayParam("a", strides=(Sym("nj"), Const(1)), intent="out"),
             ScalarParam("nj", "long")),
            [Store("a", (i, j), Const(0))],
        )
        assert "a[i * nj + j]" in cgen.emit_kernel(k)

    def test_ptr_table_addressing(self):
        sp, b = Sym("sp"), Sym("b")
        k = Kernel(
            "tab",
            (ArrayParam(
                "dists",
                strides=(Const(1),),
                ptr_table=True,
                intent="inout",
            ),),
            [Store("dists", (sp, b), Const(0))],
        )
        text = cgen.emit_kernel(k)
        assert "double **dists" in text
        assert "dists[sp][b]" in text

    def test_parallel_pragma_with_reduction_clause(self):
        k = _elementwise(parallel=True, reductions=(("+", "acc"),))
        text = cgen.emit_kernel(k)
        assert "#pragma omp parallel for schedule(static)" in text
        assert "reduction(+:acc)" in text

    def test_serial_kernel_has_no_pragmas(self):
        assert "#pragma" not in cgen.emit_kernel(_elementwise())

    def test_select_and_let_emission(self):
        i = Sym("i")
        k = Kernel(
            "clamp",
            (ArrayParam("a", strides=(Const(1),), intent="out"),
             ScalarParam("n", "long")),
            [
                Loop(
                    "i",
                    Const(0),
                    Sym("n"),
                    [
                        Let("im", Select(i.gt(0), i - 1, i), "long"),
                        Store("a", (i,), Sym("im")),
                    ],
                )
            ],
        )
        text = cgen.emit_kernel(k)
        assert "const long im = ((i > 0) ? (i - 1) : i);" in text

    def test_module_has_include_and_banner(self):
        text = cgen.emit_module([_elementwise()], banner="generated")
        assert text.startswith("/* generated */")
        assert "#include <stddef.h>" in text


class TestBuildModule:
    def test_emitted_kernel_compiles_and_runs(self, tmp_path):
        module = cgen.build_module("scale1d", [_elementwise()], build_dir=tmp_path)
        lib = module.load()
        if lib is None:
            pytest.skip(module.load_error or "no compiler")
        src = np.arange(8, dtype=np.float64)
        out = np.empty_like(src)
        dbl = ctypes.POINTER(ctypes.c_double)
        lib.scale1d(
            src.ctypes.data_as(dbl),
            out.ctypes.data_as(dbl),
            ctypes.c_long(8),
        )
        np.testing.assert_array_equal(out, src * 2.0 + 1.0)

    def test_verification_precedes_compilation(self, tmp_path):
        from repro.codee.loopir import broken_offload_kernel
        from repro.errors import IRVerificationError

        with pytest.raises(IRVerificationError) as exc:
            cgen.build_module(
                "broken", [broken_offload_kernel()], build_dir=tmp_path
            )
        assert "VFY006" in str(exc.value)
        assert not list(tmp_path.iterdir()), "no C was written"


class TestProductionSources:
    def test_stencil_source_is_ir_emitted(self):
        from repro.wrf import cstencil

        assert "advect_stage" in cstencil.C_SOURCE
        assert "#pragma omp parallel for collapse(2)" in cstencil.C_SOURCE

    def test_fsbm_source_is_ir_emitted_and_serial(self):
        from repro.fsbm import ckernels

        assert "sed_sweep" in ckernels.C_SOURCE
        assert "remap_scatter" in ckernels.C_SOURCE
        assert "#pragma omp parallel" not in ckernels.C_SOURCE
