"""Codee workflow over the fuller module_mp_fast_sbm corpus."""

import pytest

from repro.codee import sources
from repro.codee.checks import run_checks
from repro.codee.dependence import analyze_loop
from repro.codee.fparser import parse_source
from repro.codee.rewrite import offload_rewrite
from repro.codee.screening import screen_file


@pytest.fixture(scope="module")
def module():
    sf = parse_source(sources.FULL_MODULE_SOURCE, "module_mp_fast_sbm.f90")
    return sf, sf.modules[0]


class TestParsing:
    def test_all_routines_present(self, module):
        _, mod = module
        names = {r.name for r in mod.routines}
        assert names == {
            "fast_sbm",
            "kernals_ks",
            "get_cwll",
            "coal_bott_new",
            "onecond1",
            "onecond2",
            "jernucl01_ks",
            "melt_column",
        }

    def test_get_cwll_is_pure_function(self, module):
        _, mod = module
        fn = mod.routine("get_cwll")
        assert fn.is_function
        assert "pure" in fn.prefixes


class TestScreening:
    def test_screening_counts(self, module):
        fs = screen_file(sources.FULL_MODULE_SOURCE, "module_mp_fast_sbm.f90")
        assert fs.num_routines == 8
        assert fs.num_loops >= 6
        assert fs.max_nest_depth == 3  # the grid loops
        assert fs.num_offload_opportunities >= 1


class TestChecks:
    def test_legacy_onecond_routines_flagged(self, module):
        sf, _ = module
        findings = run_checks(sf)
        onecond_findings = [f for f in findings if f.routine.startswith("onecond")]
        assert any(f.check_id == "PWR007" for f in onecond_findings)
        assert any(f.check_id == "PWR001" for f in onecond_findings)

    def test_global_collision_arrays_flagged(self, module):
        sf, _ = module
        findings = run_checks(sf)
        pwr014 = [f for f in findings if f.check_id == "PWR014"]
        assert any(f.routine == "kernals_ks" for f in pwr014)


class TestDependence:
    def test_kernals_ks_parallel_coal_pair_loop_is_a_reduction(self, module):
        _, mod = module
        kern = mod.routine("kernals_ks")
        assert analyze_loop(kern.loops()[0], kern, mod).parallelizable
        # coal_bott_new's pair loop writes g1(i) under a j loop — a
        # race without a clause, but every write is g1(i) = g1(i) +
        # events, so the analysis proves it parallel as a reduction.
        coal = mod.routine("coal_bott_new")
        pair_loop = coal.loops()[1]
        report = analyze_loop(pair_loop, coal, mod)
        assert report.parallelizable
        assert report.reductions == (("+", "g1"),)

    def test_melt_column_recurrence_caught(self, module):
        _, mod = module
        melt = mod.routine("melt_column")
        report = analyze_loop(melt.loops()[0], melt, mod)
        assert not report.parallelizable
        assert any("flow dependence" in r for r in report.reasons)

    def test_main_loop_blocked_by_calls_not_by_subscripts(self, module):
        _, mod = module
        main = mod.routine("fast_sbm")
        report = analyze_loop(main.loops()[0], main, mod)
        assert not report.parallelizable
        assert all("unknown side effects" in r for r in report.reasons)


class TestRewrite:
    def test_kernals_ks_rewrites_in_module_context(self, module):
        _, mod = module
        loop = mod.routine("kernals_ks").loops()[0]
        res = offload_rewrite(
            sources.FULL_MODULE_SOURCE, line=loop.line, path="module_mp_fast_sbm.f90"
        )
        assert "map(from: cwlg, cwll, cwls)" in res.source
        # The whole module still parses with the directives inserted.
        sf = parse_source(res.source)
        assert len(sf.modules[0].routines) == 8

    def test_recurrence_loop_refused(self, module):
        _, mod = module
        loop = mod.routine("melt_column").loops()[0]
        from repro.errors import RewriteError

        with pytest.raises(RewriteError):
            offload_rewrite(sources.FULL_MODULE_SOURCE, line=loop.line)
