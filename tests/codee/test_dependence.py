"""Dependence analysis: the capability Sec. VI-A leans on."""

import pytest

from repro.codee import sources
from repro.codee.dependence import analyze_loop
from repro.codee.fparser import parse_source


def _analyze(src, routine=0, loop=0, in_module=False):
    sf = parse_source(src)
    if in_module:
        mod = sf.modules[0]
        sub = mod.routines[routine]
        return analyze_loop(sub.loops()[loop], sub, mod)
    sub = sf.routines[routine]
    return analyze_loop(sub.loops()[loop], sub)


class TestKernalsKs:
    """The paper's exact use case."""

    def test_loop_is_provably_parallel(self):
        rep = _analyze(sources.KERNALS_KS_SOURCE, in_module=True)
        assert rep.parallelizable
        assert rep.reasons == ()

    def test_collision_arrays_are_fully_overwritten(self):
        """This is what justifies map(from:) and deleting kernals_ks."""
        rep = _analyze(sources.KERNALS_KS_SOURCE, in_module=True)
        assert set(rep.write_only_arrays) == {"cwll", "cwls", "cwlg"}

    def test_scalars_privatized(self):
        rep = _analyze(sources.KERNALS_KS_SOURCE, in_module=True)
        assert "ckern_1" in rep.private_scalars
        assert "ckern_2" in rep.private_scalars

    def test_reference_tables_are_read_only(self):
        rep = _analyze(sources.KERNALS_KS_SOURCE, in_module=True)
        assert "ywll_750mb" in rep.read_only_arrays


class TestNegativeCases:
    def test_opaque_calls_block_the_main_loop(self):
        rep = _analyze(sources.MAIN_LOOP_SOURCE)
        assert not rep.parallelizable
        assert any("coal_bott_new" in r for r in rep.reasons)

    def test_recurrence_detected(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 2, n\n"
            "    a(i) = a(i-1) + 1.0\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        rep = _analyze(src)
        assert not rep.parallelizable
        assert any("loop-carried flow dependence" in r for r in rep.reasons)

    def test_reduction_to_fixed_element_detected(self):
        """``total(1) = total(1) + ...`` is a per-element accumulator:
        parallel under ``reduction(+: total)``, not a race."""
        src = (
            "subroutine s(a, total, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(in) :: a(n)\n"
            "  real, intent(inout) :: total(1)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    total(1) = total(1) + a(i)\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        rep = _analyze(src)
        assert rep.parallelizable
        assert rep.reductions == (("+", "total"),)
        assert "total" in rep.readwrite_arrays

    def test_non_rmw_fixed_element_write_is_still_a_race(self):
        """A contested write that is NOT an accumulation stays blocked."""
        src = (
            "subroutine s(total, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: total(1)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    total(1) = i * 1.0\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        rep = _analyze(src)
        assert not rep.parallelizable
        assert rep.reductions == ()
        assert any("same element" in r for r in rep.reasons)

    def test_partial_indexing_in_nest_detected(self):
        """Writing b(j) inside a j,i nest races across the i loop."""
        src = (
            "subroutine s(b, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: b(n)\n"
            "  integer :: i, j\n"
            "  do j = 1, n\n"
            "    do i = 1, n\n"
            "      b(j) = i * 1.0\n"
            "    enddo\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        rep = _analyze(src)
        assert not rep.parallelizable


class TestReductions:
    """Accumulation recognition (satellite of the loop-IR PR)."""

    SUM = (
        "subroutine s(a, total, n)\n"
        "  implicit none\n"
        "  integer, intent(in) :: n\n"
        "  real, intent(in) :: a(n)\n"
        "  real, intent(inout) :: total\n"
        "  integer :: i\n"
        "  do i = 1, n\n"
        "    total = total + a(i)\n"
        "  enddo\n"
        "end subroutine s\n"
    )

    def test_scalar_sum_is_a_reduction_not_private(self):
        rep = _analyze(self.SUM)
        assert rep.parallelizable
        assert rep.reductions == (("+", "total"),)
        assert "total" not in rep.private_scalars

    def test_subtraction_reduces_with_plus(self):
        rep = _analyze(self.SUM.replace("total + a(i)", "total - a(i)"))
        assert rep.reductions == (("+", "total"),)

    def test_minmax_intrinsic_recognized(self):
        rep = _analyze(self.SUM.replace("total + a(i)", "max(total, a(i))"))
        assert rep.parallelizable
        assert rep.reductions == (("max", "total"),)

    def test_reversed_subtraction_is_not_a_reduction(self):
        """``x = expr - x`` is not an accumulation; x stays private
        (it is overwritten each iteration from the thread's view)."""
        rep = _analyze(self.SUM.replace("total + a(i)", "a(i) - total"))
        assert rep.reductions == ()

    def test_mixed_operators_not_recognized(self):
        src = self.SUM.replace(
            "    total = total + a(i)\n",
            "    total = total + a(i)\n    total = total * 2.0\n",
        )
        rep = _analyze(src)
        assert rep.reductions == ()


class TestMapClassification:
    def test_conditional_writes_demote_to_tofrom(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    if (a(i) > 0.0) then\n"
            "      a(i) = 0.0\n"
            "    endif\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        rep = _analyze(src)
        assert rep.parallelizable
        assert "a" in rep.readwrite_arrays
        assert "a" not in rep.write_only_arrays

    def test_elementwise_update_is_tofrom(self):
        src = (
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    a(i) = a(i) * 2.0\n"
            "  enddo\n"
            "end subroutine s\n"
        )
        rep = _analyze(src)
        assert rep.parallelizable
        assert "a" in rep.readwrite_arrays

    def test_pure_function_calls_do_not_block(self):
        src = (
            "module m\n"
            "  implicit none\n"
            "contains\n"
            "pure real function f(x)\n"
            "  real, intent(in) :: x\n"
            "  f = x * 2.0\n"
            "end function f\n"
            "subroutine s(a, n)\n"
            "  implicit none\n"
            "  integer, intent(in) :: n\n"
            "  real, intent(inout) :: a(n)\n"
            "  integer :: i\n"
            "  do i = 1, n\n"
            "    a(i) = f(a(i))\n"
            "  enddo\n"
            "end subroutine s\n"
            "end module m\n"
        )
        sf = parse_source(src)
        mod = sf.modules[0]
        sub = mod.routine("s")
        rep = analyze_loop(sub.loops()[0], sub, mod)
        assert rep.parallelizable

    def test_fissioned_loop_with_predicate_is_parallel_except_call(self):
        rep = _analyze(sources.FISSIONED_LOOP_SOURCE)
        # Still blocked by the opaque coal_bott_new call — Codee's
        # conclusion too; the paper offloads it by declaring the callee
        # device-resident, not by proving it pure.
        assert not rep.parallelizable
        assert all("coal_bott_new" in r for r in rep.reasons)
