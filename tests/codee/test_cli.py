"""The codee CLI (python -m repro.codee ...), mirroring Listing 2."""

import json

import pytest

from repro.codee import sources
from repro.codee.cli import main
from repro.codee.fparser import parse_source


@pytest.fixture
def project(tmp_path):
    """A small 'WRF build tree' with a bear-style compilation database."""
    f_sbm = tmp_path / "module_mp_fast_sbm.f90"
    f_sbm.write_text(sources.KERNALS_KS_SOURCE)
    f_one = tmp_path / "onecond.f90"
    f_one.write_text(sources.legacy_onecond_source())
    db = tmp_path / "compile_commands.json"
    db.write_text(
        json.dumps(
            [
                {
                    "file": str(f_sbm),
                    "directory": str(tmp_path),
                    "arguments": ["ftn", "-c", str(f_sbm)],
                },
                {
                    "file": str(f_one),
                    "directory": str(tmp_path),
                    "arguments": ["ftn", "-c", str(f_one)],
                },
            ]
        )
    )
    return tmp_path, f_sbm, f_one, db


def test_screening_with_config(project, capsys):
    tmp, f_sbm, _, db = project
    assert main(["screening", "--config", str(db)]) == 0
    out = capsys.readouterr().out
    assert "codee screening report" in out
    assert "module_mp_fast_sbm.f90" in out


def test_checks_exit_code_reflects_findings(project, capsys):
    _, _, f_one, _ = project
    rc = main(["checks", str(f_one)])
    out = capsys.readouterr().out
    assert rc == 2  # findings present
    assert "PWR008" in out


def test_checks_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.f90"
    clean.write_text(
        "subroutine s(a, n)\n"
        "  implicit none\n"
        "  integer, intent(in) :: n\n"
        "  real, intent(inout) :: a(n)\n"
        "  integer :: i\n"
        "  do i = 1, n\n"
        "    a(i) = a(i) + 1.0\n"
        "  enddo\n"
        "end subroutine s\n"
    )
    assert main(["checks", str(clean)]) == 0


def test_rewrite_in_place_matches_listing2_invocation(project, capsys):
    """codee rewrite --offload omp --in-place file:line:col --config db"""
    _, f_sbm, _, db = project
    loop_line = (
        parse_source(sources.KERNALS_KS_SOURCE).modules[0].routines[0].loops()[0].line
    )
    rc = main(
        [
            "rewrite",
            "--offload",
            "omp",
            "--in-place",
            f"{f_sbm}:{loop_line}:4",
            "--config",
            str(db),
        ]
    )
    assert rc == 0
    rewritten = f_sbm.read_text()
    assert "!$omp target teams distribute" in rewritten
    assert "map(from: cwlg, cwll, cwls)" in rewritten
    # The annotated file still parses.
    parse_source(rewritten)


def test_rewrite_stdout_without_in_place(project, capsys):
    _, f_sbm, _, _ = project
    loop_line = (
        parse_source(sources.KERNALS_KS_SOURCE).modules[0].routines[0].loops()[0].line
    )
    assert main(["rewrite", f"{f_sbm}:{loop_line}"]) == 0
    out = capsys.readouterr().out
    assert "!$omp parallel do" in out
    assert "!$omp" not in f_sbm.read_text()  # untouched


def test_rewrite_unsound_loop_fails_cleanly(tmp_path, capsys):
    bad = tmp_path / "recur.f90"
    bad.write_text(
        "subroutine s(a, n)\n"
        "  implicit none\n"
        "  integer, intent(in) :: n\n"
        "  real, intent(inout) :: a(n)\n"
        "  integer :: i\n"
        "  do i = 2, n\n"
        "    a(i) = a(i-1)\n"
        "  enddo\n"
        "end subroutine s\n"
    )
    assert main(["rewrite", f"{bad}:6"]) == 1
    assert "not provably parallel" in capsys.readouterr().err


def test_unknown_offload_model_rejected(project, capsys):
    _, f_sbm, _, _ = project
    assert main(["rewrite", "--offload", "acc", f"{f_sbm}:30"]) == 1


def test_no_sources_is_an_error(tmp_path, capsys):
    db = tmp_path / "cc.json"
    db.write_text(json.dumps([]))
    assert main(["screening", "--config", str(db)]) == 1
    assert "no Fortran sources" in capsys.readouterr().err
