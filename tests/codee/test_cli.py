"""The codee CLI (python -m repro.codee ...), mirroring Listing 2."""

import json

import pytest

from repro.codee import sources
from repro.codee.cli import main
from repro.codee.fparser import parse_source


@pytest.fixture
def project(tmp_path):
    """A small 'WRF build tree' with a bear-style compilation database."""
    f_sbm = tmp_path / "module_mp_fast_sbm.f90"
    f_sbm.write_text(sources.KERNALS_KS_SOURCE)
    f_one = tmp_path / "onecond.f90"
    f_one.write_text(sources.legacy_onecond_source())
    db = tmp_path / "compile_commands.json"
    db.write_text(
        json.dumps(
            [
                {
                    "file": str(f_sbm),
                    "directory": str(tmp_path),
                    "arguments": ["ftn", "-c", str(f_sbm)],
                },
                {
                    "file": str(f_one),
                    "directory": str(tmp_path),
                    "arguments": ["ftn", "-c", str(f_one)],
                },
            ]
        )
    )
    return tmp_path, f_sbm, f_one, db


def test_screening_with_config(project, capsys):
    tmp, f_sbm, _, db = project
    assert main(["screening", "--config", str(db)]) == 0
    out = capsys.readouterr().out
    assert "codee screening report" in out
    assert "module_mp_fast_sbm.f90" in out


def test_checks_advisory_findings_exit_zero(project, capsys):
    """Modernization/optimization findings print but do not gate CI."""
    _, _, f_one, _ = project
    rc = main(["checks", str(f_one)])
    out = capsys.readouterr().out
    assert rc == 0  # only modernization findings
    assert "PWR008" in out


def test_checks_correctness_findings_exit_two(project, capsys):
    """PWR014 (global state written in a parallelizable loop) gates."""
    _, f_sbm, _, _ = project
    rc = main(["checks", str(f_sbm)])
    out = capsys.readouterr().out
    assert rc == 2
    assert "PWR014" in out


def test_checks_findings_sorted_by_path_line_id(project, capsys):
    tmp, f_sbm, f_one, db = project
    main(["checks", "--config", str(db)])
    out = capsys.readouterr().out
    keys = []
    for line in out.splitlines():
        if line.startswith("["):  # "[PWR008] path:line ..."
            check_id = line[1 : line.index("]")]
            loc = line.split()[1]
            path, _, ln = loc.rpartition(":")
            keys.append((path, int(ln), check_id))
    assert len(keys) >= 3
    assert keys == sorted(keys)


def test_checks_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.f90"
    clean.write_text(
        "subroutine s(a, n)\n"
        "  implicit none\n"
        "  integer, intent(in) :: n\n"
        "  real, intent(inout) :: a(n)\n"
        "  integer :: i\n"
        "  do i = 1, n\n"
        "    a(i) = a(i) + 1.0\n"
        "  enddo\n"
        "end subroutine s\n"
    )
    assert main(["checks", str(clean)]) == 0


def test_rewrite_in_place_matches_listing2_invocation(project, capsys):
    """codee rewrite --offload omp --in-place file:line:col --config db"""
    _, f_sbm, _, db = project
    loop_line = (
        parse_source(sources.KERNALS_KS_SOURCE).modules[0].routines[0].loops()[0].line
    )
    rc = main(
        [
            "rewrite",
            "--offload",
            "omp",
            "--in-place",
            f"{f_sbm}:{loop_line}:4",
            "--config",
            str(db),
        ]
    )
    assert rc == 0
    rewritten = f_sbm.read_text()
    assert "!$omp target teams distribute" in rewritten
    assert "map(from: cwlg, cwll, cwls)" in rewritten
    # The annotated file still parses.
    parse_source(rewritten)


def test_rewrite_stdout_without_in_place(project, capsys):
    _, f_sbm, _, _ = project
    loop_line = (
        parse_source(sources.KERNALS_KS_SOURCE).modules[0].routines[0].loops()[0].line
    )
    assert main(["rewrite", f"{f_sbm}:{loop_line}"]) == 0
    out = capsys.readouterr().out
    assert "!$omp parallel do" in out
    assert "!$omp" not in f_sbm.read_text()  # untouched


def test_rewrite_unsound_loop_fails_cleanly(tmp_path, capsys):
    bad = tmp_path / "recur.f90"
    bad.write_text(
        "subroutine s(a, n)\n"
        "  implicit none\n"
        "  integer, intent(in) :: n\n"
        "  real, intent(inout) :: a(n)\n"
        "  integer :: i\n"
        "  do i = 2, n\n"
        "    a(i) = a(i-1)\n"
        "  enddo\n"
        "end subroutine s\n"
    )
    assert main(["rewrite", f"{bad}:6"]) == 1
    assert "not provably parallel" in capsys.readouterr().err


def test_unknown_offload_model_rejected(project, capsys):
    _, f_sbm, _, _ = project
    assert main(["rewrite", "--offload", "acc", f"{f_sbm}:30"]) == 1


def test_no_sources_is_an_error(tmp_path, capsys):
    db = tmp_path / "cc.json"
    db.write_text(json.dumps([]))
    assert main(["screening", "--config", str(db)]) == 1
    assert "no Fortran sources" in capsys.readouterr().err


class TestVerifyCommand:
    @pytest.fixture
    def broken(self, tmp_path):
        f = tmp_path / "broken_offload.f90"
        f.write_text(sources.BROKEN_OFFLOAD_SOURCE)
        return f

    def test_broken_file_exits_two_with_all_check_ids(self, broken, capsys):
        rc = main(["verify", str(broken)])
        out = capsys.readouterr().out
        assert rc == 2
        for check_id in ("VFY001", "VFY002", "VFY003", "VFY004", "VFY005"):
            assert check_id in out

    def test_all_embedded_sources_verify_clean(self, capsys):
        assert main(["verify", "--all"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, broken, capsys):
        rc = main(["verify", str(broken), "--format", "json"])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert [v["check_id"] for v in payload] == sorted(
            v["check_id"] for v in payload
        )

    def test_sarif_format(self, broken, capsys):
        rc = main(["verify", str(broken), "--format", "sarif"])
        assert rc == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_raised_stack_budget_silences_stack_check(self, broken, capsys):
        rc = main(["verify", str(broken), "--stack-budget", "64KB"])
        out = capsys.readouterr().out
        assert rc == 2  # other violations remain
        assert "VFY004" not in out

    def test_verify_without_inputs_is_usage_error(self, capsys):
        assert main(["verify"]) == 1
        assert "verify needs" in capsys.readouterr().err

    def test_unparseable_fortran_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.f90"
        bad.write_text("subroutine s\n  do i = 1\nend subroutine s\n")
        assert main(["verify", str(bad)]) == 1

    def test_bad_budget_string_is_a_usage_error(self, broken, capsys):
        rc = main(["verify", str(broken), "--stack-budget", "garbage"])
        assert rc == 1
        assert "cannot parse size" in capsys.readouterr().err

    def test_argparse_usage_errors_remap_to_one(self, broken, capsys):
        """argparse exits 2 natively; 2 is reserved for correctness."""
        assert main(["verify", str(broken), "--format", "xml"]) == 1
        assert main(["no-such-command"]) == 1
