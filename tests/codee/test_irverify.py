"""IR static verification rules VFY006-VFY010."""

from repro.codee import irverify
from repro.codee.loopir import (
    ArrayParam,
    Assign,
    Const,
    Kernel,
    Load,
    LocalArray,
    Loop,
    ScalarParam,
    Store,
    Sym,
    broken_offload_kernel,
)
from repro.codee.verifier import VerifierConfig


def _ids(violations):
    return [v.check_id for v in violations]


class TestRaces:
    def test_broken_fixture_is_vfy006_at_its_preorder_line(self):
        violations = irverify.verify_kernel(broken_offload_kernel())
        assert _ids(violations) == ["VFY006"]
        v = violations[0]
        assert v.path == "<ir:broken_offload_ir>"
        assert v.line == 3  # outer loop=1, inner loop=2, store=3
        assert v.severity == "error"

    def test_outside_scalar_write_is_vfy006(self):
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Assign("flag", Const(1))],
            parallel=True,
        )
        k = Kernel("f", (ScalarParam("n", "long"),), [nest])
        assert "VFY006" in _ids(irverify.verify_kernel(k))

    def test_serial_kernel_is_exempt(self):
        nest = Loop("i", Const(0), Sym("n"), [Assign("flag", Const(1))])
        k = Kernel("f", (ScalarParam("n", "long"),), [nest])
        assert irverify.verify_kernel(k) == []


class TestReductions:
    def _accum(self, reductions=()):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Store("acc", (Const(0),), Load("a", (i,)), op="+=")],
            parallel=True,
            reductions=tuple(reductions),
        )
        return Kernel(
            "accum",
            (
                ArrayParam("a", strides=(Const(1),)),
                ArrayParam("acc", strides=(Const(1),), intent="inout"),
                ScalarParam("n", "long"),
            ),
            [nest],
        )

    def test_unannotated_accumulation_is_vfy009(self):
        violations = irverify.verify_kernel(self._accum())
        assert _ids(violations) == ["VFY009"]

    def test_reduction_annotation_silences_vfy009(self):
        violations = irverify.verify_kernel(self._accum([("+", "acc")]))
        assert violations == []


class TestAliasAndIntent:
    def test_aliased_write_in_parallel_region_is_vfy007(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [Store("dst", (i,), Load("other", (i,)))],
            parallel=True,
        )
        k = Kernel(
            "alias",
            (
                ArrayParam(
                    "dst", strides=(Const(1),), intent="out", alias_group="g"
                ),
                ArrayParam("other", strides=(Const(1),), alias_group="g"),
                ScalarParam("n", "long"),
            ),
            [nest],
        )
        assert "VFY007" in _ids(irverify.verify_kernel(k))

    def test_store_to_intent_in_is_a_vfy008_error(self):
        i = Sym("i")
        nest = Loop("i", Const(0), Sym("n"), [Store("a", (i,), Const(0))])
        k = Kernel(
            "badintent",
            (ArrayParam("a", strides=(Const(1),)),  # intent defaults to in
             ScalarParam("n", "long")),
            [nest],
        )
        violations = irverify.verify_kernel(k)
        assert _ids(violations) == ["VFY008"]
        assert violations[0].severity == "error"

    def test_never_stored_intent_out_is_a_vfy008_warning(self):
        k = Kernel(
            "unset",
            (ArrayParam("a", strides=(Const(1),), intent="out"),),
            [],
        )
        violations = irverify.verify_kernel(k)
        assert _ids(violations) == ["VFY008"]
        assert violations[0].severity == "warning"


class TestStack:
    def _frame(self, size):
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [LocalArray("buf", size), Store("buf", (Const(0),), Const(0))],
            parallel=True,
        )
        return Kernel("frame", (ScalarParam("n", "long"),), [nest])

    def test_frame_within_budget_is_clean(self):
        config = VerifierConfig(stack_bytes=1024)
        assert irverify.verify_kernel(self._frame(64), config) == []

    def test_overflow_that_spills_to_heap_is_a_warning(self):
        config = VerifierConfig(
            stack_bytes=64, heap_bytes=1 << 30, max_resident_threads=16
        )
        violations = irverify.verify_kernel(self._frame(64), config)
        assert _ids(violations) == ["VFY010"]
        assert violations[0].severity == "warning"

    def test_overflow_beyond_heap_is_an_error(self):
        config = VerifierConfig(
            stack_bytes=64, heap_bytes=1024, max_resident_threads=1 << 20
        )
        violations = irverify.verify_kernel(self._frame(64), config)
        assert _ids(violations) == ["VFY010"]
        assert violations[0].severity == "error"


class TestOrdering:
    def test_findings_are_deterministically_sorted(self):
        i = Sym("i")
        nest = Loop(
            "i",
            Const(0),
            Sym("n"),
            [
                Assign("flag", Const(1)),
                Store("a", (i,), Const(0)),
            ],
            parallel=True,
        )
        k = Kernel(
            "multi",
            (ArrayParam("a", strides=(Const(1),)), ScalarParam("n", "long")),
            [nest],
        )
        first = irverify.verify_kernel(k)
        second = irverify.verify_kernel(k)
        assert [v.render() for v in first] == [v.render() for v in second]
        assert [v.line for v in first] == sorted(v.line for v in first)
