"""Calibration freeze: the cost-model constants are fixed, not tuned.

DESIGN.md Sec. 2 commits to calibrating the free constants once and
freezing them. This regression test pins every calibrated value so an
accidental (or experiment-motivated) edit fails loudly and forces the
change to be made — and documented — deliberately.
"""

import pytest


def test_hardware_specs_are_public_numbers():
    from repro.hardware.specs import A100_40GB, EPYC_MILAN

    assert A100_40GB.num_sms == 108
    assert A100_40GB.peak_flops_fp64 == 9.7e12
    assert A100_40GB.peak_flops_fp32 == 19.5e12
    assert A100_40GB.dram_bandwidth == 1555.0e9
    assert A100_40GB.memory_bytes == 40 * 1024**3
    assert EPYC_MILAN.cores == 64
    assert EPYC_MILAN.clock_hz == 2.45e9


def test_calibrated_cost_constants_frozen():
    from repro.core import costmodel
    from repro.core.device import STACK_RESERVATION_FACTOR
    from repro.hardware.specs import EPYC_MILAN

    assert costmodel.WARPS_HALF_COMPUTE == 12.0
    assert costmodel.WARPS_HALF_MEMORY == 3.0
    assert costmodel.CPU_LOOP_OVERHEAD == 1.5e-9
    assert EPYC_MILAN.sustained_flops_per_core == 2.1e9
    assert STACK_RESERVATION_FACTOR == 0.5


def test_calibrated_work_weights_frozen():
    from repro.fsbm import condensation, nucleation, sedimentation
    from repro.fsbm.coal_bott import FLOPS_PER_PAIR
    from repro.fsbm.collision_kernels import FLOPS_PER_ENTRY
    from repro.wrf import dynamics

    assert FLOPS_PER_ENTRY == 4.0
    assert FLOPS_PER_PAIR == 10.0
    assert condensation.COND_SUBSTEPS == 15
    assert condensation.FLOPS_PER_BIN == 25.0 * 15
    assert sedimentation.FLOPS_PER_BIN == 12.0
    assert nucleation.FLOPS_PER_POINT == 80.0
    assert dynamics.FLOPS_PER_CELL_TEND == 11.0
    assert dynamics.FLOPS_PER_CELL_UPDATE == 2.0


def test_sync_noise_coefficient_frozen():
    from repro.mpi.costmodel import SYNC_NOISE_COEFF

    assert SYNC_NOISE_COEFF == 0.02


def test_paper_env_frozen():
    from repro.core.env import PAPER_ENV

    assert PAPER_ENV.stack_bytes == 65536
    assert PAPER_ENV.heap_bytes == 64 * 1024**2
    assert PAPER_ENV.block_size == 128


def test_frame_bytes_in_the_stack_story_band():
    """The automatic-array frame must stay between the default stack
    (1 KiB) and the paper's setting (64 KiB) or the whole Sec. VI-B/C
    narrative stops reproducing."""
    from repro.fsbm.temp_arrays import automatic_frame_bytes

    assert 2048 < automatic_frame_bytes() < 65536
