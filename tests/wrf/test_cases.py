"""Synthetic CONUS case: determinism, decomposition independence,
spatial heterogeneity (the load-imbalance source)."""

import numpy as np
import pytest

from repro.grid.decomposition import decompose_domain
from repro.wrf.cases import CaseConfig, activity_fraction, conus12km_case
from repro.wrf.namelist import conus12km_namelist


def _domain(scale=0.1):
    return conus12km_namelist(scale=scale).domain


def test_same_seed_same_case():
    domain = _domain()
    dec = decompose_domain(domain, 2)
    a = conus12km_case(domain, dec.patches[0], domain.dz, seed=7)
    b = conus12km_case(domain, dec.patches[0], domain.dz, seed=7)
    np.testing.assert_array_equal(a.t, b.t)
    np.testing.assert_array_equal(
        a.micro.dists[next(iter(a.micro.dists))],
        b.micro.dists[next(iter(b.micro.dists))],
    )


def test_different_seed_different_case():
    domain = _domain()
    dec = decompose_domain(domain, 2)
    a = conus12km_case(domain, dec.patches[0], domain.dz, seed=7)
    b = conus12km_case(domain, dec.patches[0], domain.dz, seed=8)
    assert not np.array_equal(a.t, b.t)


def test_decomposition_invariance():
    """The same global cell gets identical values regardless of how
    many ranks the domain is split over — rank counts change only the
    partitioning, never the case."""
    domain = _domain()
    dec1 = decompose_domain(domain, 1)
    dec4 = decompose_domain(domain, 4)
    whole = conus12km_case(domain, dec1.patches[0], domain.dz, seed=3)
    for patch in dec4.patches:
        part = conus12km_case(domain, patch, domain.dz, seed=3)
        sl_dom = (patch.i.to_slice(1), slice(None), patch.j.to_slice(1))
        sl_loc = (
            patch.i.to_slice(patch.im.start),
            slice(None),
            patch.j.to_slice(patch.jm.start),
        )
        np.testing.assert_allclose(part.t[sl_loc], whole.t[sl_dom], rtol=1e-12)


def test_storms_cluster_rather_than_fill_the_domain():
    domain = _domain(scale=0.25)
    dec = decompose_domain(domain, 1)
    f = conus12km_case(domain, dec.patches[0], domain.dz, seed=2024)
    cloud = f.micro.total_condensate_mass() > 1e-12
    assert cloud.any()
    # Cloudy columns are a limited, clustered subset of the domain.
    cloudy_columns = cloud.any(axis=1)
    assert 0.0 < cloudy_columns.mean() < 0.6
    # And the vertical extent is confined to the lower/mid troposphere.
    cloudy_levels = np.nonzero(cloud.any(axis=(0, 2)))[0]
    assert cloudy_levels.max() < 0.6 * domain.nz


def test_activity_imbalanced_across_patches():
    """Different patches see very different storm loads — the paper's
    load-imbalance driver."""
    domain = _domain(scale=0.25)
    dec = decompose_domain(domain, 8)
    fracs = [
        activity_fraction(conus12km_case(domain, p, domain.dz, seed=2024))
        for p in dec.patches
    ]
    assert max(fracs) > 0
    assert max(fracs) > 3 * (sum(fracs) / len(fracs) + 1e-9) or min(fracs) == 0.0


def test_fields_are_physical():
    domain = _domain()
    dec = decompose_domain(domain, 2)
    f = conus12km_case(domain, dec.patches[1], domain.dz, seed=1)
    assert (f.t > 180).all() and (f.t < 330).all()
    assert (f.qv >= 0).all() and (f.qv < 0.04).all()
    assert np.abs(f.w).max() <= 5.0
    assert (f.u > 0).all()  # westerlies


def test_initial_updraft_collocated_with_bubbles():
    domain = _domain()
    dec = decompose_domain(domain, 1)
    f = conus12km_case(domain, dec.patches[0], domain.dz, seed=2024)
    cloudy = f.micro.total_condensate_mass() > 1e-12
    if cloudy.any():
        assert f.w[cloudy].mean() > f.w[~cloudy].mean()
