"""Namelist configuration and prognostic state."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grid.decomposition import decompose_domain
from repro.optim.stages import Stage
from repro.wrf.namelist import Namelist, conus12km_namelist
from repro.wrf.state import WrfFields, base_state_column


class TestNamelist:
    def test_full_conus_defaults(self):
        nl = conus12km_namelist()
        assert (nl.domain.nx, nl.domain.ny, nl.domain.nz) == (425, 300, 50)
        assert nl.dt == 5.0
        assert nl.num_steps == 120

    def test_scaled_case(self):
        nl = conus12km_namelist(scale=0.1)
        assert nl.domain.nz == 50
        assert nl.domain.nx < 50

    def test_gpu_stage_requires_gpus(self):
        with pytest.raises(ConfigurationError):
            conus12km_namelist(stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=0)

    def test_with_stage_auto_assigns_gpus(self):
        nl = conus12km_namelist(num_ranks=8)
        gpu = nl.with_stage(Stage.OFFLOAD_COLLAPSE2)
        assert gpu.num_gpus == 8

    def test_with_ranks(self):
        nl = conus12km_namelist(num_ranks=4).with_ranks(32, num_gpus=16)
        assert nl.num_ranks == 32 and nl.num_gpus == 16

    def test_precision_validated(self):
        with pytest.raises(ConfigurationError):
            conus12km_namelist(device_precision="fp16")


class TestBaseState:
    def test_profiles_physical(self):
        base = base_state_column(50, 500.0)
        assert base["pressure_mb"][0] > 900
        assert base["pressure_mb"][-1] < 100
        assert (np.diff(base["pressure_mb"]) < 0).all()
        assert base["temperature"][0] > base["temperature"][20]
        assert (base["qv"] > 0).all()
        # Drier aloft through the troposphere (the tiny stratospheric
        # uptick from falling pressure at constant T is physical).
        assert (np.diff(base["qv"][:20]) <= 0).all()

    def test_tropopause_isothermal(self):
        base = base_state_column(50, 500.0)
        top = base["temperature"][-5:]
        np.testing.assert_allclose(top, top[0])


class TestWrfFields:
    def _fields(self):
        domain = conus12km_namelist(scale=0.06).domain
        dec = decompose_domain(domain, 2)
        return WrfFields(patch=dec.patches[0], dz=domain.dz), dec.patches[0]

    def test_allocated_at_memory_extents(self):
        f, patch = self._fields()
        assert f.t.shape == patch.shape
        assert f.micro.dists[next(iter(f.micro.dists))].shape[:3] == patch.shape

    def test_owned_view_writes_through(self):
        f, patch = self._fields()
        f.owned(f.t)[...] = 999.0
        assert (f.t == 999.0).sum() == patch.num_points

    def test_advected_fields_include_every_bin_species(self):
        f, _ = self._fields()
        fields = f.advected_fields()
        assert "t" in fields and "qv" in fields and "w" in fields
        bins = [k for k in fields if k.startswith("bin_")]
        assert len(bins) == 7

    def test_scalar_count_matches_paper_scale(self):
        """7 species x 33 bins + t + qv + w = 234 advected scalars."""
        f, _ = self._fields()
        assert f.scalar_count() == 7 * 33 + 3

    def test_pressure_and_rho_broadcast(self):
        f, patch = self._fields()
        assert f.pressure_mb.shape == patch.shape
        assert (f.rho > 0).all()
