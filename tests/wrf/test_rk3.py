"""The full RK3 integrator option."""

import numpy as np
import pytest

from repro.wrf.dynamics import WindSplit, rk3_advect, rk_scalar_tend
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def _setup(shape=(16, 4, 8), u=50.0):
    rng = np.random.default_rng(0)
    s = rng.uniform(0, 1, shape)
    split = WindSplit.build(
        np.full(shape, u), np.zeros(shape), np.zeros(shape), 1000.0, 500.0
    )
    return s, split


def test_rk3_close_to_euler_at_small_dt():
    s_euler, split = _setup()
    s_rk3 = s_euler.copy()
    dt = 0.1  # CFL = 0.005: the schemes converge
    s_euler += dt * rk_scalar_tend(s_euler, split)
    rk3_advect(s_rk3, split, dt)
    np.testing.assert_allclose(s_rk3, s_euler, atol=1e-4)


def test_rk3_differs_at_large_dt():
    s_euler, split = _setup()
    s_rk3 = s_euler.copy()
    dt = 10.0
    s_euler += dt * rk_scalar_tend(s_euler, split)
    rk3_advect(s_rk3, split, dt)
    assert not np.allclose(s_rk3, s_euler)


def test_rk3_conserves_interior_mass():
    shape = (20, 3, 20)
    s = np.zeros(shape)
    s[8:12, :, 8:12] = 1.0
    split = WindSplit.build(
        np.full(shape, 10.0),
        np.full(shape, 5.0),
        np.zeros(shape),
        1000.0,
        500.0,
    )
    total0 = s.sum()
    rk3_advect(s, split, dt=5.0)
    assert s.sum() == pytest.approx(total0, rel=1e-12)


def test_rk3_clip_negative():
    s, split = _setup()
    s -= 0.5  # force negatives after update
    rk3_advect(s, split, dt=1.0, clip_negative=True)
    assert s.min() >= 0.0


def test_rk3_stable_over_many_steps():
    s, split = _setup()
    peak0 = np.abs(s).max()
    for _ in range(50):
        rk3_advect(s, split, dt=5.0)
    assert np.isfinite(s).all()
    assert np.abs(s).max() <= peak0 * 1.01  # donor cell is diffusive


def test_model_runs_with_rk3_numerics():
    nl = conus12km_namelist(scale=0.05, num_ranks=2, use_rk3_numerics=True)
    model = WrfModel(nl)
    result = model.run(num_steps=2)
    out = model.gather_output()
    assert np.isfinite(out["T"]).all()
    assert out["QCLOUD_TOTAL"].sum() > 0
    # Simulated cost nearly identical to the Euler-numerics run: the
    # cost model always charges RK3; the residual difference comes from
    # the slightly different physics activity the two integrators evolve.
    euler = WrfModel(
        conus12km_namelist(scale=0.05, num_ranks=2, use_rk3_numerics=False)
    ).run(num_steps=2)
    assert result.elapsed == pytest.approx(euler.elapsed, rel=0.05)
