"""Exact-equality contract of the member-batched ensemble engine.

Bit-identity is the contract under test, not tolerance: for every
member, an :class:`~repro.wrf.ensemble.EnsembleModel` run must produce
*exactly* the fields, per-rank :class:`~repro.core.simclock.SimClock`
charges, and history frames of a solo :class:`~repro.wrf.model.WrfModel`
run of that member's :func:`~repro.wrf.namelist.member_namelist`
(``np.array_equal`` / ``==``, never ``allclose``). ``members=1`` must
degenerate to today's solo layout — one superblock slab, fields bound
as views — and ``REPRO_DISABLE_ENSEMBLE=1`` must fall back to
sequential solo models with identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.wrf.ensemble import EnsembleModel, ensemble_disabled
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist, member_namelist

DELTAS = (
    (),
    (("bubble_dtheta", 3.5), ("ccn_background", 140.0)),
    (("seed_offset", 7), ("moisture_boost", 1.45)),
    (("bubble_dtheta", 2.25), ("seed_offset", 3)),
)


def _namelist(members: int, num_ranks: int = 1, **kw):
    return conus12km_namelist(
        scale=0.02,
        num_ranks=num_ranks,
        members=members,
        member_deltas=DELTAS[:members],
        history_interval=0.0,
        **kw,
    )


def _solo_result(nl, member: int, num_steps: int):
    solo = WrfModel(member_namelist(nl, member))
    try:
        return solo.run(num_steps=num_steps, final_history=True)
    finally:
        solo.close()


def _assert_member_exact(ens_res, solo_res, member: int):
    """Every observable of one member equals its solo run, bitwise."""
    assert len(ens_res.history) == len(solo_res.history)
    for fe, fs in zip(ens_res.history, solo_res.history):
        assert fe.keys() == fs.keys()
        for name in fe:
            assert np.array_equal(fe[name], fs[name]), (
                f"member {member} history field {name} differs"
            )
    for rank, (ce, cs) in enumerate(
        zip(ens_res.rank_clocks, solo_res.rank_clocks)
    ):
        assert dict(ce.buckets) == dict(cs.buckets), (
            f"member {member} rank {rank} bucket charges differ"
        )
        assert dict(ce.regions) == dict(cs.regions), (
            f"member {member} rank {rank} region charges differ"
        )
    assert ens_res.elapsed == solo_res.elapsed
    for te, ts in zip(ens_res.step_timings, solo_res.step_timings):
        assert te.elapsed == ts.elapsed
        for se, ss in zip(te.sbm_stats, ts.sbm_stats):
            assert se.mp_points == ss.mp_points
            assert se.coal_points == ss.coal_points
            assert se.coal_seconds == ss.coal_seconds
            assert se.fast_sbm_seconds == ss.fast_sbm_seconds


class TestBatchedVsSolo:
    @pytest.mark.parametrize("members", [1, 2, 4])
    def test_members_bit_identical_to_solo(self, members):
        nl = _namelist(members)
        ens = EnsembleModel(nl)
        try:
            assert ens._solo is None  # actually batched, not fallback
            results = ens.run(num_steps=2, final_history=True)
        finally:
            ens.close()
        assert len(results) == members
        for m in range(members):
            _assert_member_exact(results[m], _solo_result(nl, m, 2), m)

    def test_two_ranks_bit_identical(self):
        nl = _namelist(2, num_ranks=2)
        ens = EnsembleModel(nl)
        try:
            results = ens.run(num_steps=2, final_history=True)
        finally:
            ens.close()
        for m in range(2):
            _assert_member_exact(results[m], _solo_result(nl, m, 2), m)


class TestMembersOneDegenerates:
    def test_single_member_layout_is_solo_layout(self):
        """members=1 keeps today's resident-superblock field binding."""
        nl = _namelist(1)
        ens = EnsembleModel(nl)
        try:
            (rank,) = ens.ranks
            assert rank.block.shape[0] == 1
            (fields,) = rank.fields
            # The member's advected scalars are views into the slab —
            # the same aliasing a solo WrfModel's superblock binding
            # produces, so members=1 adds a leading axis and nothing
            # else.
            assert fields.block.base is rank.block or np.shares_memory(
                fields.block, rank.block
            )
            solo = WrfModel(member_namelist(nl, 0))
            try:
                assert fields.block.shape == solo.fields[0].block.shape
            finally:
                solo.close()
        finally:
            ens.close()


class TestKillSwitch:
    def test_disabled_env_reports_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_ENSEMBLE", "1")
        assert ensemble_disabled() is not None

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_ENSEMBLE", raising=False)
        assert ensemble_disabled() is None

    def test_kill_switch_equivalent_results(self, monkeypatch):
        nl = _namelist(2)
        monkeypatch.setenv("REPRO_DISABLE_ENSEMBLE", "1")
        fallback = EnsembleModel(nl)
        try:
            assert fallback._solo is not None
            fb_results = fallback.run(num_steps=2, final_history=True)
        finally:
            fallback.close()
        monkeypatch.delenv("REPRO_DISABLE_ENSEMBLE")
        batched = EnsembleModel(nl)
        try:
            assert batched._solo is None
            b_results = batched.run(num_steps=2, final_history=True)
        finally:
            batched.close()
        for m in range(2):
            _assert_member_exact(b_results[m], fb_results[m], m)


class TestProcPoolMembers:
    def test_two_ranks_two_members_member_sliced_gather(self):
        """Worker processes step all members; gather slices one out."""
        nl = _namelist(2, num_ranks=2, use_process_ranks=True)
        ens = EnsembleModel(nl)
        try:
            if ens._pool is None:
                pytest.skip("procpool unavailable in this environment")
            results = ens.run(num_steps=2, final_history=True)
            frames = [ens.gather_output(m) for m in range(2)]
        finally:
            ens.close()
        for m in range(2):
            solo_res = _solo_result(nl, m, 2)
            _assert_member_exact(results[m], solo_res, m)
            for name, arr in frames[m].items():
                assert np.array_equal(arr, solo_res.history[-1][name]), (
                    f"member {m} gathered field {name} differs"
                )
