"""Multiprocess rank execution: bit-identical to the thread-pool path.

The acceptance bar for ``use_process_ranks`` is exact equality — not
tolerance-level agreement — between thread-pool and process-rank runs:
gathered output fields, per-rank clock totals (every bucket and region),
scheduler elapsed time, and history frames. The workers run the same
per-rank stage functions in the same per-rank order against
deterministically reconstructed cost models, so every float accumulation
sequence is identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.stages import Stage
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def _run(num_steps: int = 2, **overrides):
    nl = conus12km_namelist(scale=0.05, **overrides)
    model = WrfModel(nl)
    try:
        result = model.run(num_steps=num_steps, final_history=True)
        output = model.gather_output()
        clocks = [c.state() for c in model.clocks]
        return output, clocks, result
    finally:
        model.close()


def _assert_equal_runs(threads, procs):
    o_t, c_t, r_t = threads
    o_p, c_p, r_p = procs
    for name in o_t:
        np.testing.assert_array_equal(o_p[name], o_t[name], err_msg=name)
    # Clock states are (buckets, regions) dicts — exact equality, every
    # bucket and every named region, no tolerance.
    assert c_p == c_t
    assert r_p.elapsed == r_t.elapsed
    assert len(r_p.history) == len(r_t.history)
    for f_t, f_p in zip(r_t.history, r_p.history):
        for name in f_t:
            np.testing.assert_array_equal(f_p[name], f_t[name], err_msg=name)


class TestProcessRankEquivalence:
    def test_matches_threads_exactly(self):
        kw = dict(num_ranks=2, seed=31)
        _assert_equal_runs(
            _run(use_process_ranks=False, **kw),
            _run(use_process_ranks=True, **kw),
        )

    def test_matches_at_four_ranks(self):
        kw = dict(num_ranks=4, seed=7)
        _assert_equal_runs(
            _run(use_process_ranks=False, **kw),
            _run(use_process_ranks=True, **kw),
        )

    def test_matches_without_resident_fields(self):
        # Non-resident fields exercise the explicit pack into the
        # shared segment (pack_superblock(out=...)) each step.
        kw = dict(num_ranks=2, seed=11, use_superblock_fields=False)
        _assert_equal_runs(
            _run(use_process_ranks=False, **kw),
            _run(use_process_ranks=True, **kw),
        )

    def test_history_io_charges_match(self):
        # History frames route through worker gather and the charge_io
        # command; the IO bucket must accumulate bit-identically.
        kw = dict(num_ranks=2, seed=13, history_interval=60.0)
        t = _run(num_steps=3, use_process_ranks=False, **kw)
        p = _run(num_steps=3, use_process_ranks=True, **kw)
        _assert_equal_runs(t, p)
        io_t = [buckets.get("io", 0.0) for buckets, _ in t[1]]
        io_p = [buckets.get("io", 0.0) for buckets, _ in p[1]]
        assert io_t == io_p
        assert any(v > 0 for v in io_t)


class TestProcessRankFallbacks:
    def test_gpu_stage_falls_back_to_threads(self):
        nl = conus12km_namelist(
            scale=0.05,
            num_ranks=2,
            stage=Stage.OFFLOAD_COLLAPSE2,
            num_gpus=1,
            use_process_ranks=True,
        )
        model = WrfModel(nl)
        try:
            assert model._pool is None
            model.step()
        finally:
            model.close()

    def test_pool_active_replaces_executor(self):
        nl = conus12km_namelist(
            scale=0.05, num_ranks=2, use_process_ranks=True
        )
        model = WrfModel(nl)
        try:
            assert model._pool is not None
            assert model._executor is None
        finally:
            model.close()
        assert model._pool is None

    def test_step_stats_come_from_workers(self):
        nl = conus12km_namelist(
            scale=0.05, num_ranks=2, use_process_ranks=True
        )
        model = WrfModel(nl)
        try:
            timing = model.step()
            assert len(timing.sbm_stats) == 2
            for stats in timing.sbm_stats:
                assert stats.mp_points > 0
                assert stats.fast_sbm_seconds > 0.0
        finally:
            model.close()
