"""On-disk history output and the diffwrf command-line tool."""

import glob

import pytest

from repro.core.env import PAPER_ENV
from repro.optim.stages import Stage
from repro.wrf.diffwrf import main as diffwrf_main
from repro.wrf.io import read_wrfout
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def _run_with_history(tmp_path, stage=Stage.BASELINE, subdir="run"):
    out = tmp_path / subdir
    out.mkdir()
    kw = dict(
        scale=0.05,
        num_ranks=2,
        stage=stage,
        history_interval=10.0,
        history_path=str(out),
    )
    if stage.uses_gpu:
        kw.update(num_gpus=2, env=PAPER_ENV)
    model = WrfModel(conus12km_namelist(**kw))
    try:
        model.run(num_steps=3)
    finally:
        model.close()
    return sorted(glob.glob(str(out / "wrfout_d01_*.npz")))


def test_history_files_written_with_attrs(tmp_path):
    files = _run_with_history(tmp_path)
    assert files, "history frames written at the interval"
    fields, attrs = read_wrfout(files[0])
    assert "T" in fields and "RAINNC" in fields
    assert attrs["stage"] == "baseline"
    assert attrs["dx"] == 12_000.0


def test_diffwrf_cli_identical_runs_exit_zero(tmp_path, capsys):
    a = _run_with_history(tmp_path, subdir="a")
    b = _run_with_history(tmp_path, subdir="b")
    rc = diffwrf_main([a[-1], b[-1]])
    out = capsys.readouterr().out
    assert rc == 0
    assert "bitwise identical" in out


def test_diffwrf_cli_cpu_vs_gpu_reports_digits(tmp_path, capsys):
    cpu = _run_with_history(tmp_path, stage=Stage.BASELINE, subdir="cpu")
    gpu = _run_with_history(
        tmp_path, stage=Stage.OFFLOAD_COLLAPSE3, subdir="gpu"
    )
    rc = diffwrf_main([cpu[-1], gpu[-1]])
    out = capsys.readouterr().out
    assert rc == 1  # differences found (fp32 device arithmetic)
    assert "Files differ" in out
    assert "digits" in out
