"""wrfout files and the diffwrf comparison tool."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wrf.diffwrf import diff_field, diffwrf, format_diff_report
from repro.wrf.io import read_wrfout, write_wrfout


class TestWrfoutIO:
    def test_round_trip(self, tmp_path):
        fields = {"T": np.random.default_rng(0).normal(size=(4, 3, 4))}
        attrs = {"title": "test run", "dx": 12000.0}
        path = write_wrfout(tmp_path / "wrfout_d01", fields, attrs)
        back, back_attrs = read_wrfout(path)
        np.testing.assert_array_equal(back["T"], fields["T"])
        assert back_attrs == attrs

    def test_reads_suffixless_path(self, tmp_path):
        fields = {"T": np.zeros((2, 2, 2))}
        write_wrfout(tmp_path / "out", fields)
        back, _ = read_wrfout(tmp_path / "out")
        assert "T" in back

    def test_empty_write_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_wrfout(tmp_path / "x", {})


class TestDiffwrf:
    def test_identical_fields_report_16_digits(self):
        a = np.random.default_rng(0).normal(size=(5, 5))
        d = diff_field("T", a, a.copy())
        assert d.bitwise_identical
        assert d.digits == 16.0
        assert d.ndiff == 0

    def test_single_precision_perturbation_lands_in_float32_band(self):
        a = np.random.default_rng(0).normal(size=(50, 50)) * 300.0
        b = a.astype(np.float32).astype(np.float64)
        d = diff_field("T", a, b)
        assert 6.0 < d.digits < 9.0
        assert d.ndiff > 0

    def test_large_differences_few_digits(self):
        a = np.full((10, 10), 100.0)
        b = a * 1.05
        d = diff_field("QC", a, b)
        assert d.digits < 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            diff_field("T", np.zeros((2, 2)), np.zeros((3, 2)))

    def test_diffwrf_compares_shared_fields_only(self):
        a = {"T": np.zeros((2, 2)), "ONLY_A": np.zeros(2)}
        b = {"T": np.zeros((2, 2)), "ONLY_B": np.zeros(2)}
        diffs = diffwrf(a, b)
        assert [d.name for d in diffs] == ["T"]

    def test_report_renders_every_row(self):
        a = {"T": np.ones((3, 3)), "W": np.ones((3, 3))}
        b = {"T": np.ones((3, 3)) * 1.001, "W": np.ones((3, 3))}
        text = format_diff_report(diffwrf(a, b))
        assert "T" in text and "W" in text and "digits" in text

    def test_zero_reference_field(self):
        d = diff_field("Q", np.zeros((4, 4)), np.zeros((4, 4)))
        assert d.digits == 16.0
        d2 = diff_field("Q", np.zeros((4, 4)), np.full((4, 4), 1e-3))
        assert d2.digits == 0.0
