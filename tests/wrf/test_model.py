"""End-to-end model runs: clocks, history, output assembly."""

import numpy as np
import pytest

from repro.core.clock import TimeBucket
from repro.optim.stages import Stage
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


@pytest.fixture(scope="module")
def baseline_result():
    model = WrfModel(conus12km_namelist(scale=0.05, num_ranks=2))
    result = model.run(num_steps=3)
    return model, result


class TestRun:
    def test_elapsed_accumulates(self, baseline_result):
        _, result = baseline_result
        assert result.elapsed > 0
        assert result.steps_run == 3
        assert len(result.step_timings) == 3
        assert result.per_step_elapsed == pytest.approx(result.elapsed / 3)

    def test_projection_to_full_run_length(self, baseline_result):
        _, result = baseline_result
        full = result.projected_total()
        assert full == pytest.approx(result.per_step_elapsed * 120)

    def test_regions_populated(self, baseline_result):
        _, result = baseline_result
        for region in ("solve_em", "fast_sbm", "rk_scalar_tend", "rk_update_scalar"):
            assert result.region_seconds(region) > 0, region

    def test_every_rank_charged(self, baseline_result):
        _, result = baseline_result
        for clock in result.rank_clocks:
            assert clock.total > 0
            assert clock.bucket(TimeBucket.MPI) > 0

    def test_physics_evolves_state(self, baseline_result):
        model, _ = baseline_result
        out = model.gather_output()
        assert out["QCLOUD_TOTAL"].sum() > 0
        assert np.abs(out["W"]).max() > 0

    def test_gathered_output_shapes(self, baseline_result):
        model, _ = baseline_result
        out = model.gather_output()
        dom = model.namelist.domain
        assert out["T"].shape == (dom.nx, dom.nz, dom.ny)
        assert out["RAINNC"].shape == (dom.nx, dom.ny)
        assert (out["T"] > 0).all()  # every cell filled by some patch


class TestHistory:
    def test_history_written_at_interval(self):
        nl = conus12km_namelist(
            scale=0.05, num_ranks=2, history_interval=10.0
        )
        model = WrfModel(nl)
        model.run(num_steps=3)  # 15 simulated seconds -> one history due
        assert model.clocks[0].bucket(TimeBucket.IO) > 0

    def test_no_history_by_default(self, baseline_result):
        _, result = baseline_result
        assert result.rank_clocks[0].bucket(TimeBucket.IO) == 0.0


class TestGpuModel:
    def test_offloaded_run_uses_devices(self):
        from repro.core.env import PAPER_ENV

        nl = conus12km_namelist(
            scale=0.05,
            num_ranks=2,
            stage=Stage.OFFLOAD_COLLAPSE3,
            num_gpus=2,
            env=PAPER_ENV,
        )
        model = WrfModel(nl)
        try:
            result = model.run(num_steps=2)
            assert any(len(records) > 0 for records in result.kernel_records)
            assert result.scheduler.breakdown["gpu"] > 0
        finally:
            model.close()

    def test_shared_gpu_two_ranks_one_device(self):
        from repro.core.env import PAPER_ENV

        nl = conus12km_namelist(
            scale=0.05,
            num_ranks=2,
            stage=Stage.OFFLOAD_COLLAPSE3,
            num_gpus=1,
            env=PAPER_ENV,
        )
        model = WrfModel(nl)
        try:
            model.run(num_steps=1)
            assert len(model.gpu_pool.devices[0].contexts) == 2
        finally:
            model.close()


class TestDeterminism:
    def test_same_namelist_same_results(self):
        nl = conus12km_namelist(scale=0.05, num_ranks=2, seed=11)
        m1 = WrfModel(nl)
        m2 = WrfModel(nl)
        m1.run(num_steps=2)
        m2.run(num_steps=2)
        o1, o2 = m1.gather_output(), m2.gather_output()
        for name in o1:
            np.testing.assert_array_equal(o1[name], o2[name])


class TestSuperblockFields:
    """Persistent superblock residency: same physics, no per-step pack."""

    def test_fields_are_views_into_block(self, baseline_result):
        model, _ = baseline_result
        for f in model.fields:
            assert f.block is not None
            assert f.t.base is not None  # a view, not its own storage
            assert np.shares_memory(f.t, f.block)

    def test_superblock_matches_per_field_storage(self):
        """On/off agree to float-summation-order level: the resident
        block contracts condensate over all species in one matvec and
        skips the pack/unpack copies, so results are equivalent but not
        bitwise (~1e-15 relative per step)."""
        nl_on = conus12km_namelist(
            scale=0.05, num_ranks=2, seed=23, use_superblock_fields=True
        )
        nl_off = conus12km_namelist(
            scale=0.05, num_ranks=2, seed=23, use_superblock_fields=False
        )
        m_on, m_off = WrfModel(nl_on), WrfModel(nl_off)
        try:
            assert all(f.block is not None for f in m_on.fields)
            assert all(f.block is None for f in m_off.fields)
            m_on.run(num_steps=2)
            m_off.run(num_steps=2)
            o_on, o_off = m_on.gather_output(), m_off.gather_output()
            for name in o_off:
                scale = float(np.abs(o_off[name]).max()) or 1.0
                np.testing.assert_allclose(
                    o_on[name], o_off[name],
                    rtol=1e-9, atol=1e-9 * scale, err_msg=name,
                )
        finally:
            m_on.close()
            m_off.close()

    def test_native_physics_off_matches_default(self):
        """The compiled physics kernels must not change the model's
        answer: distributions are bit-identical, so gathered moments
        agree to reduction-order level."""
        nl_on = conus12km_namelist(scale=0.05, num_ranks=2, seed=29)
        nl_off = conus12km_namelist(
            scale=0.05, num_ranks=2, seed=29, use_native_physics=False
        )
        m_on, m_off = WrfModel(nl_on), WrfModel(nl_off)
        try:
            m_on.run(num_steps=2)
            m_off.run(num_steps=2)
            o_on, o_off = m_on.gather_output(), m_off.gather_output()
            for name in o_off:
                scale = float(np.abs(o_off[name]).max()) or 1.0
                np.testing.assert_allclose(
                    o_on[name], o_off[name],
                    rtol=1e-11, atol=1e-11 * scale, err_msg=name,
                )
        finally:
            m_on.close()
            m_off.close()


class TestRankBatching:
    """Batched rank execution: same numerics and charges as serial."""

    def test_batched_matches_serial_exactly(self):
        nl_serial = conus12km_namelist(
            scale=0.05, num_ranks=4, seed=17, rank_batching=False
        )
        nl_batched = conus12km_namelist(
            scale=0.05, num_ranks=4, seed=17, rank_batching=True
        )
        m_serial = WrfModel(nl_serial)
        m_batched = WrfModel(nl_batched)
        try:
            assert m_serial._executor is None
            assert m_batched._executor is not None
            m_serial.run(num_steps=2)
            m_batched.run(num_steps=2)
            o_s, o_b = m_serial.gather_output(), m_batched.gather_output()
            for name in o_s:
                np.testing.assert_array_equal(o_b[name], o_s[name])
            # Per-rank simulated charges are execution-order independent.
            for cs, cb in zip(m_serial.clocks, m_batched.clocks):
                assert cb.total == pytest.approx(cs.total, rel=1e-12)
                for region in ("fast_sbm", "rk_scalar_tend"):
                    assert cb.region_total(region) == pytest.approx(
                        cs.region_total(region), rel=1e-12
                    )
        finally:
            m_serial.close()
            m_batched.close()

    def test_single_rank_stays_serial(self):
        model = WrfModel(conus12km_namelist(scale=0.05, num_ranks=1))
        try:
            assert model._executor is None
            model.step()
        finally:
            model.close()

    def test_gpu_stage_stays_serial(self):
        nl = conus12km_namelist(
            scale=0.05,
            num_ranks=2,
            stage=Stage.OFFLOAD_COLLAPSE2,
            num_gpus=1,
            rank_batching=True,
        )
        model = WrfModel(nl)
        try:
            assert model._executor is None
            model.step()
        finally:
            model.close()

    def test_close_shuts_down_executor(self):
        model = WrfModel(conus12km_namelist(scale=0.05, num_ranks=2))
        assert model._executor is not None
        model.close()
        assert model._executor is None
