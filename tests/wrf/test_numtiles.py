"""OpenMP tiling (numtiles) in the CPU cost path."""

import pytest

from repro.core.costmodel import CpuCostModel
from repro.hardware.specs import EPYC_MILAN
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


class TestThreadSpeedup:
    def test_single_thread_is_identity(self):
        m = CpuCostModel(cpu=EPYC_MILAN, threads=1)
        assert m.thread_speedup() == 1.0

    def test_speedup_sublinear(self):
        m8 = CpuCostModel(cpu=EPYC_MILAN, threads=8)
        assert 5.0 < m8.thread_speedup() < 8.0

    def test_compute_bound_work_scales_with_threads(self):
        one = CpuCostModel(cpu=EPYC_MILAN, threads=1)
        eight = CpuCostModel(cpu=EPYC_MILAN, threads=8)
        assert eight.time(1e10, 1e6) < one.time(1e10, 1e6) / 5

    def test_bandwidth_bound_work_saturates(self):
        """Threads cannot beat the socket's bandwidth share."""
        one = CpuCostModel(
            cpu=EPYC_MILAN, threads=1, active_cores_on_socket=64
        )
        eight = CpuCostModel(
            cpu=EPYC_MILAN, threads=8, active_cores_on_socket=64
        )
        assert eight.time(0.0, 1e10) == pytest.approx(one.time(0.0, 1e10))


class TestModelIntegration:
    def test_numtiles_speeds_the_run(self):
        base = WrfModel(
            conus12km_namelist(scale=0.05, num_ranks=2, numtiles=1)
        ).run(num_steps=2)
        tiled = WrfModel(
            conus12km_namelist(scale=0.05, num_ranks=2, numtiles=4)
        ).run(num_steps=2)
        assert tiled.elapsed < base.elapsed
        # But sublinearly (tile efficiency + bandwidth sharing).
        assert tiled.elapsed > base.elapsed / 4

    def test_paper_configuration_is_one_thread(self):
        nl = conus12km_namelist()
        assert nl.numtiles == 1
