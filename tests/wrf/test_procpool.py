"""Shared-memory lifecycle of the multiprocess rank pool.

Failure containment is the contract under test: a worker crash or a
driven-after-close pool must raise :class:`~repro.errors.ProcPoolError`
*after* tearing everything down — workers dead, every shared segment
unlinked — and a driver that dies between create and unlink must still
be covered by the atexit reaper. ``REPRO_DISABLE_PROCPOOL`` must drop
the model back onto the thread path.
"""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory

import pytest

from repro.errors import ProcPoolError
from repro.grid.decomposition import decompose_domain
from repro.wrf import procpool
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def _namelist(num_ranks: int = 2):
    return conus12km_namelist(
        scale=0.05, num_ranks=num_ranks, use_process_ranks=True
    )


def _pool(num_ranks: int = 2, timeout: float = 30.0):
    nl = _namelist(num_ranks)
    decomp = decompose_domain(nl.domain, nl.num_ranks)
    return procpool.ProcRankPool(nl, decomp, timeout=timeout)


def _segments_gone(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            SharedMemory(name=name)


class TestPoolLifecycle:
    def test_close_unlinks_segments(self):
        pool = _pool()
        names = list(pool.blocks.names)
        assert names
        assert set(names) <= set(procpool.leaked_segments())
        pool.step()
        pool.close()
        assert not (set(names) & set(procpool.leaked_segments()))
        _segments_gone(names)

    def test_double_close_and_double_unlink_are_noops(self):
        pool = _pool()
        pool.close()
        pool.close()
        pool.blocks.unlink()
        pool.blocks.unlink()

    def test_step_after_close_raises(self):
        pool = _pool()
        pool.close()
        with pytest.raises(ProcPoolError, match="closed"):
            pool.step()

    def test_worker_crash_mid_step_raises_and_tears_down(self):
        pool = _pool(timeout=15.0)
        names = list(pool.blocks.names)
        pool.crash(0)
        with pytest.raises(ProcPoolError):
            pool.step()
        # The failure tore the whole pool down: every worker dead,
        # every segment unlinked, nothing left for the reaper.
        for proc in pool._procs:
            assert not proc.is_alive()
        assert not (set(names) & set(procpool.leaked_segments()))
        _segments_gone(names)
        pool.close()  # still a no-op afterwards


class TestLeakProtection:
    def test_leaked_segments_are_tracked_and_reaped(self):
        nl = _namelist()
        decomp = decompose_domain(nl.domain, nl.num_ranks)
        blocks = procpool.SharedSuperblocks(decomp, nscalars=4)
        names = list(blocks.names)
        try:
            assert set(names) <= set(procpool.leaked_segments())
            # Simulate a driver that died before unlink: the atexit
            # reaper (invoked directly here) must destroy the segments.
            procpool._reap_leaked()
            assert not (set(names) & set(procpool.leaked_segments()))
            _segments_gone(names)
        finally:
            blocks.unlink()  # after the reap this must stay a no-op

    def test_segment_cache_footprint_registered(self):
        pool = _pool()
        try:
            from repro.core.cache import cache_stats

            info = cache_stats()[procpool.SEGMENT_CACHE]
            assert info.currsize == 2
            assert info.nbytes > 0
        finally:
            pool.close()
        from repro.core.cache import cache_stats

        assert cache_stats()[procpool.SEGMENT_CACHE].currsize == 0


class TestKillSwitch:
    def test_disable_env_falls_back_to_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_PROCPOOL", "1")
        assert procpool.procpool_disabled() is not None
        model = WrfModel(_namelist())
        try:
            assert model._pool is None
            assert model._executor is not None
            model.step()
        finally:
            model.close()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_PROCPOOL", raising=False)
        assert procpool.procpool_disabled() is None
