"""The fused superblock transport engine vs. the per-field reference.

The contract under test: the fused path (packed superblock, sliced
numpy stencil or compiled C stencil) reproduces the per-field
``rk_scalar_tend``/``rk3_advect`` numerics to ~1e-14, charges the
per-rank clocks bit-identically, and performs zero heap allocations
after warmup (the ``map(alloc:)`` analogy).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import cache_stats
from repro.fsbm.species import Species
from repro.wrf import cstencil
from repro.wrf.dynamics import (
    RK3_FRACTIONS,
    WindSplit,
    rk3_advect,
    rk_scalar_tend,
)
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist
from repro.wrf.transport import (
    ScalarLayout,
    TransportWorkspace,
    fused_euler_advect,
    fused_rk3_advect,
    fused_upwind_tend,
    get_workspace,
    pack_superblock,
    unpack_superblock,
)

#: Shapes exercising interior stencils and every 1-cell-wide edge case.
SHAPES = st.tuples(
    st.integers(1, 7), st.integers(1, 6), st.integers(1, 5), st.integers(1, 4)
)


def _random_problem(rng, shape4):
    ni, nk, nj, ns = shape4
    u, v, w = (rng.standard_normal((ni, nk, nj)) * 10.0 for _ in range(3))
    split = WindSplit.build(u, v, w, 12000.0, 500.0)
    block = np.ascontiguousarray(rng.uniform(-1.0, 2.0, size=shape4))
    return split, block


def _reference_tend(block, split):
    return np.stack(
        [rk_scalar_tend(block[..., n], split) for n in range(block.shape[-1])],
        axis=-1,
    )


class TestFusedTendProperty:
    @settings(max_examples=30, deadline=None)
    @given(shape4=SHAPES, seed=st.integers(0, 2**31 - 1))
    def test_numpy_fused_tend_matches_reference(self, shape4, seed):
        rng = np.random.default_rng(seed)
        split, block = _random_problem(rng, shape4)
        ws = TransportWorkspace(shape4[:3], shape4[3])
        out = np.empty_like(block)
        fused_upwind_tend(block, split, out, ws)
        ref = _reference_tend(block, split)
        np.testing.assert_allclose(out, ref, rtol=0.0, atol=1e-14)

    @settings(max_examples=30, deadline=None)
    @given(
        shape4=SHAPES,
        seed=st.integers(0, 2**31 - 1),
        rk3=st.booleans(),
    )
    def test_fused_advect_matches_per_field(self, shape4, seed, rk3):
        """Fused Euler/RK3 (whichever stencil backend is active) vs.
        the per-field reference, including the per-scalar clip mask."""
        rng = np.random.default_rng(seed)
        split, block = _random_problem(rng, shape4)
        ns = shape4[3]
        layout = ScalarLayout(
            entries=tuple((f"s{n}", 1) for n in range(ns))
        )
        no_clip = tuple(f"s{n}" for n in range(0, ns, 2))
        clip_slices = layout.clip_slices(no_clip=no_clip)
        dt = 3.0
        ref = block.copy()
        for n in range(ns):
            col = np.ascontiguousarray(ref[..., n])
            clip = f"s{n}" not in no_clip
            if rk3:
                rk3_advect(col, split, dt, clip_negative=clip)
            else:
                col += dt * rk_scalar_tend(col, split)
                if clip:
                    np.maximum(col, 0.0, out=col)
            ref[..., n] = col
        ws = TransportWorkspace(shape4[:3], ns)
        advect = fused_rk3_advect if rk3 else fused_euler_advect
        result = advect(block, split, dt, ws, clip_slices)
        np.testing.assert_allclose(result, ref, rtol=0.0, atol=1e-13)


@pytest.mark.skipif(
    cstencil.load_stencil() is None,
    reason=f"compiled stencil unavailable: {cstencil.load_error}",
)
class TestCompiledStencil:
    @settings(max_examples=25, deadline=None)
    @given(shape4=SHAPES, seed=st.integers(0, 2**31 - 1), rk3=st.booleans())
    def test_c_path_matches_numpy_path(self, shape4, seed, rk3):
        import os

        rng = np.random.default_rng(seed)
        split, block = _random_problem(rng, shape4)
        ns = shape4[3]
        clip_slices = (slice(1, ns),) if ns > 1 else ()
        dt = 3.0
        advect = fused_rk3_advect if rk3 else fused_euler_advect

        ws_c = TransportWorkspace(shape4[:3], ns)
        got_c = advect(block.copy(), split, dt, ws_c, clip_slices).copy()

        os.environ[cstencil.DISABLE_ENV] = "1"
        try:
            ws_np = TransportWorkspace(shape4[:3], ns)
            got_np = advect(block.copy(), split, dt, ws_np, clip_slices).copy()
        finally:
            os.environ.pop(cstencil.DISABLE_ENV, None)
        np.testing.assert_allclose(got_c, got_np, rtol=0.0, atol=1e-13)

    def test_disable_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(cstencil.DISABLE_ENV, "1")
        assert cstencil.load_stencil() is None


class TestPackUnpack:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_roundtrip_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        shape = (4, 3, 5)
        layout = ScalarLayout(
            entries=(("t", 1), ("qv", 1), ("w", 1), ("bin_x", 4), ("bin_y", 2))
        )
        fields = {
            "t": rng.uniform(size=shape),
            "qv": rng.uniform(size=shape),
            "w": rng.uniform(size=shape),
            "bin_x": rng.uniform(size=(*shape, 4)),
            "bin_y": rng.uniform(size=(*shape, 2)),
        }
        originals = {k: v.copy() for k, v in fields.items()}
        ws = TransportWorkspace(shape, layout.nscalars)
        block = pack_superblock(fields, layout, ws)
        assert block.shape == (*shape, layout.nscalars)
        block *= 2.0
        unpack_superblock(block, fields, layout)
        for name, orig in originals.items():
            np.testing.assert_array_equal(fields[name], 2.0 * orig)

    def test_layout_slices_and_masks(self):
        layout = ScalarLayout(
            entries=(("t", 1), ("qv", 1), ("w", 1), ("bin_a", 3), ("bin_b", 2))
        )
        assert layout.nscalars == 8
        sls = layout.slices()
        assert sls["t"] == slice(0, 1)
        assert sls["bin_b"] == slice(6, 8)
        # t and w unclipped -> two merged runs: qv, then both bin blocks.
        assert layout.clip_slices(no_clip=("t", "w")) == (
            slice(1, 2),
            slice(3, 8),
        )
        mask = layout.clip_mask(no_clip=("t", "w"))
        assert mask.tolist() == [0, 1, 0, 1, 1, 1, 1, 1]


def _run_model(nl, steps=2):
    model = WrfModel(nl)
    try:
        for _ in range(steps):
            model.step()
        out = model.gather_output()
        clocks = model.clocks
    finally:
        model.close()
    return out, clocks


class TestModelEquivalence:
    @pytest.mark.parametrize("rk3", [False, True])
    def test_fused_matches_per_field_model(self, rk3):
        nl = conus12km_namelist(
            scale=0.04, num_ranks=2, use_rk3_numerics=rk3, seed=7
        )
        out_f, clk_f = _run_model(nl)
        out_p, clk_p = _run_model(replace(nl, use_fused_transport=False))
        for key in out_f:
            np.testing.assert_allclose(
                out_f[key], out_p[key], rtol=0.0, atol=1e-12
            )
        # Per-rank simulated charges are bit-exact between the paths.
        for a, b in zip(clk_f, clk_p):
            assert a.total == b.total
            for region in ("solve_em", "rk_scalar_tend", "rk_update_scalar"):
                assert a.region_total(region) == b.region_total(region)

    def test_narrow_patches_match(self):
        """Rank decomposition producing 1-cell-wide owned patches."""
        from repro.grid.domain import DomainSpec
        from repro.wrf.namelist import Namelist

        nl = Namelist(
            domain=DomainSpec(nx=2, nz=6, ny=2), num_ranks=2, seed=3
        )
        probe = WrfModel(nl)
        narrow = any(
            min(p.i.size, p.j.size) == 1
            for p in probe.decomposition.patches
        )
        probe.close()
        assert narrow
        out_f, _ = _run_model(nl)
        out_p, _ = _run_model(replace(nl, use_fused_transport=False))
        for key in out_f:
            np.testing.assert_allclose(
                out_f[key], out_p[key], rtol=0.0, atol=1e-12
            )


class TestWorkspaceReuse:
    def test_steps_reuse_buffers_without_allocating(self):
        nl = conus12km_namelist(scale=0.04, num_ranks=1, seed=11)
        model = WrfModel(nl)
        try:
            model.step()  # warmup allocates every pool once
            ws = model.workspaces[0]
            allocs = ws.allocations
            before = cache_stats()["wrf.transport_workspace"]
            for _ in range(3):
                model.step()
            after = cache_stats()["wrf.transport_workspace"]
        finally:
            model.close()
        assert ws.allocations == allocs  # zero new pool allocations
        assert after.misses == before.misses  # no new workspace builds
        assert after.currsize == before.currsize
        assert after.nbytes >= ws.nbytes > 0  # sizer reports pinned bytes

    def test_workspace_registry_keys_by_owner(self):
        a = get_workspace((4, 3, 2), 5, owner=0)
        b = get_workspace((4, 3, 2), 5, owner=1)
        again = get_workspace((4, 3, 2), 5, owner=0)
        assert a is again
        assert a is not b

    def test_buffer_views_share_one_pool(self):
        ws = TransportWorkspace((4, 3, 2), 5)
        big = ws.buffer("tend", (4, 3, 2, 5))
        small = ws.buffer("tend", (4, 3, 2))
        assert ws.allocations == 1
        assert np.shares_memory(big, small)
