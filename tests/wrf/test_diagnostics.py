"""Meteorological diagnostics: CAPE, storm census, precip rates."""

import numpy as np
import pytest

from repro.grid.decomposition import decompose_domain
from repro.wrf.cases import conus12km_case
from repro.wrf.diagnostics import (
    StormCensus,
    cape_field,
    parcel_cape,
    precipitation_rate,
    storm_census,
)
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist
from repro.wrf.state import base_state_column


class TestParcelCape:
    def test_unstable_sounding_has_cape(self):
        base = base_state_column(50, 500.0)
        cape = parcel_cape(
            base["temperature"], base["qv"], base["pressure_mb"], 500.0
        )
        # The synthetic continental-summer sounding is conditionally
        # unstable: CAPE in the hundreds-to-thousands J/kg band.
        assert 100.0 < cape < 6000.0

    def test_warm_bubble_raises_cape(self):
        base = base_state_column(50, 500.0)
        t = base["temperature"].copy()
        qv = base["qv"].copy()
        cold = parcel_cape(t, qv, base["pressure_mb"], 500.0)
        t[0] += 3.0
        qv[0] *= 1.3
        warm = parcel_cape(t, qv, base["pressure_mb"], 500.0)
        assert warm > cold

    def test_isothermal_column_has_no_cape(self):
        t = np.full(30, 280.0)
        qv = np.full(30, 1.0e-4)  # very dry: never saturates
        p = np.linspace(1000.0, 200.0, 30)
        assert parcel_cape(t, qv, p, 500.0) == 0.0

    def test_cape_field_shape(self):
        domain = conus12km_namelist(scale=0.04).domain
        dec = decompose_domain(domain, 1)
        f = conus12km_case(domain, dec.patches[0], domain.dz, seed=1)
        cape = cape_field(f, domain.dz)
        assert cape.shape == (f.shape[0], f.shape[2])
        assert (cape >= 0).all()
        assert cape.max() > 0


class TestStormCensus:
    @pytest.fixture(scope="class")
    def output(self):
        model = WrfModel(conus12km_namelist(scale=0.08, num_ranks=2))
        model.run(num_steps=3)
        return model.gather_output()

    def test_census_counts_storms(self, output):
        census = storm_census(output)
        assert census.n_cells >= 1
        assert 0.0 < census.cloudy_fraction < 1.0
        assert census.max_updraft > 0
        assert "storm census" in census.format_report()

    def test_empty_domain_has_no_cells(self, output):
        empty = {
            "QCLOUD_TOTAL": np.zeros_like(output["QCLOUD_TOTAL"]),
            "W": np.zeros_like(output["W"]),
            "RAINNC": np.zeros_like(output["RAINNC"]),
        }
        census = storm_census(empty)
        assert census.n_cells == 0
        assert census.cloudy_fraction == 0.0

    def test_two_separated_blobs_are_two_cells(self):
        qc = np.zeros((10, 4, 10))
        qc[1:3, 2, 1:3] = 1e-6
        qc[7:9, 2, 7:9] = 1e-6
        census = storm_census(
            {"QCLOUD_TOTAL": qc, "W": np.zeros_like(qc), "RAINNC": np.zeros((10, 10))}
        )
        assert census.n_cells == 2


class TestPrecipRate:
    def test_rate_from_accumulation(self):
        before = np.zeros((4, 4))
        after = np.full((4, 4), 10.0)
        rate = precipitation_rate(before, after, dt=5.0)
        np.testing.assert_allclose(rate, 2.0)

    def test_negative_deltas_clamped(self):
        rate = precipitation_rate(np.ones((2, 2)), np.zeros((2, 2)), dt=1.0)
        assert (rate == 0.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            precipitation_rate(np.zeros((2, 2)), np.zeros((3, 2)), dt=1.0)
        with pytest.raises(ValueError):
            precipitation_rate(np.zeros((2, 2)), np.zeros((2, 2)), dt=0.0)
