"""RK3 transport pieces: tendencies, updates, buoyancy."""

import numpy as np
import pytest

from repro.wrf.dynamics import (
    WindSplit,
    buoyancy_w_update,
    rk_scalar_tend,
    rk_update_scalar,
)


def _winds(shape, u=5.0, v=0.0, w=0.0):
    return (
        np.full(shape, u),
        np.full(shape, v),
        np.full(shape, w),
    )


class TestRkScalarTend:
    def test_uniform_field_has_zero_tendency(self):
        shape = (8, 5, 8)
        s = np.full(shape, 3.0)
        u, v, w = _winds(shape)
        tend = rk_scalar_tend(s, u, v, w, 1000.0, 500.0)
        np.testing.assert_allclose(tend, 0.0, atol=1e-14)

    def test_advection_moves_a_blob_downwind(self):
        shape = (16, 3, 4)
        s = np.zeros(shape)
        s[4, :, :] = 1.0
        u, v, w = _winds(shape, u=100.0)
        dt = 1.0
        for _ in range(30):
            s += dt * rk_scalar_tend(s, u, v, w, 1000.0, 500.0)
        com = (s.sum(axis=(1, 2)) * np.arange(16)).sum() / s.sum()
        assert com > 6.0  # center of mass moved east

    def test_upwind_is_positivity_preserving_at_cfl(self):
        shape = (12, 4, 6)
        rng = np.random.default_rng(0)
        s = rng.uniform(0, 1, shape)
        u, v, w = _winds(shape, u=10.0, v=-5.0, w=1.0)
        dt = 10.0  # CFL = 10*10/1000 = 0.1
        for _ in range(20):
            s += dt * rk_scalar_tend(s, u, v, w, 1000.0, 500.0)
        assert s.min() >= -1e-12

    def test_bin_dimension_broadcasts(self):
        shape = (6, 4, 6)
        s = np.zeros((*shape, 33))
        s[3, 2, 3, 10] = 1.0
        u, v, w = _winds(shape, u=50.0)
        tend = rk_scalar_tend(s, u, v, w, 1000.0, 500.0)
        assert tend.shape == s.shape
        assert tend[3, 2, 3, 10] < 0  # blob leaves its cell

    def test_windsplit_matches_direct_call(self):
        shape = (6, 4, 6)
        rng = np.random.default_rng(1)
        s = rng.uniform(0, 1, shape)
        u, v, w = _winds(shape, u=8.0, v=2.0, w=-1.0)
        direct = rk_scalar_tend(s, u, v, w, 1000.0, 500.0)
        split = WindSplit.build(u, v, w, 1000.0, 500.0)
        hoisted = rk_scalar_tend(s, split)
        np.testing.assert_array_equal(direct, hoisted)

    def test_mass_conserved_in_interior(self):
        """Flux-form upwind conserves the total except boundary flux."""
        shape = (20, 4, 20)
        s = np.zeros(shape)
        s[8:12, :, 8:12] = 1.0
        u, v, w = _winds(shape, u=10.0, v=10.0)
        total0 = s.sum()
        s += 5.0 * rk_scalar_tend(s, u, v, w, 1000.0, 500.0)
        assert s.sum() == pytest.approx(total0, rel=1e-12)


class TestRkUpdateScalar:
    def test_in_place_update(self):
        s0 = np.full((4, 3, 4), 2.0)
        tend = np.full((4, 3, 4), 0.5)
        out = np.empty_like(s0)
        rk_update_scalar(out, s0, tend, dt_stage=2.0)
        np.testing.assert_allclose(out, 3.0)

    def test_clip_negative(self):
        s0 = np.zeros((2, 2, 2))
        tend = np.full((2, 2, 2), -1.0)
        out = np.empty_like(s0)
        rk_update_scalar(out, s0, tend, dt_stage=1.0, clip_negative=True)
        assert (out == 0.0).all()


class TestBuoyancy:
    def test_warm_anomaly_accelerates_upward(self):
        shape = (4, 10, 4)
        w = np.zeros(shape)
        t_base = np.linspace(300.0, 220.0, 10)
        t = np.broadcast_to(t_base[None, :, None], shape).copy()
        t[2, 4, 2] += 3.0  # warm bubble
        cond = np.zeros(shape)
        rho = np.full(shape, 1e-3)
        buoyancy_w_update(w, t, t_base, cond, rho, dt=5.0)
        assert w[2, 4, 2] > 0
        assert w[0, 4, 0] == pytest.approx(0.0, abs=1e-12)

    def test_condensate_loading_pulls_down(self):
        shape = (4, 10, 4)
        w = np.zeros(shape)
        t_base = np.linspace(300.0, 220.0, 10)
        t = np.broadcast_to(t_base[None, :, None], shape).copy()
        cond = np.zeros(shape)
        cond[1, 5, 1] = 5.0e-6  # 5 g/m^3 of hydrometeors
        rho = np.full(shape, 1e-3)
        buoyancy_w_update(w, t, t_base, cond, rho, dt=5.0)
        assert w[1, 5, 1] < 0

    def test_rigid_boundaries_and_speed_limit(self):
        shape = (4, 10, 4)
        w = np.zeros(shape)
        t_base = np.linspace(300.0, 220.0, 10)
        t = np.broadcast_to(t_base[None, :, None], shape).copy() + 50.0
        buoyancy_w_update(
            w, t, t_base, np.zeros(shape), np.full(shape, 1e-3), dt=1000.0
        )
        assert (w[:, 0, :] == 0).all() and (w[:, -1, :] == 0).all()
        assert w.max() <= 25.0
