"""The top-level repro CLI."""

import pytest

from repro.cli import main


def test_run_baseline(capsys):
    assert main(["run", "--scale", "0.05", "--ranks", "2", "--steps", "2"]) == 0
    out = capsys.readouterr().out
    assert "simulated per-step elapsed" in out
    assert "fast_sbm" in out
    assert "NVTX range summary" in out


def test_run_gpu_stage_with_extensions(capsys):
    rc = main(
        [
            "run",
            "--stage",
            "offload_collapse3",
            "--scale",
            "0.05",
            "--ranks",
            "2",
            "--steps",
            "2",
            "--offload-condensation",
            "--offload-advection",
        ]
    )
    assert rc == 0
    assert "offload_collapse3" in capsys.readouterr().out


def test_stages_prints_three_tables(capsys):
    assert main(["stages", "--scale", "0.05", "--ranks", "2", "--steps", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out and "Table IV" in out and "Table V" in out
    assert "coal_bott_new loop" in out


def test_scaling_quick(capsys):
    assert main(["scaling", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "Table VII" in out
    assert "2 nodes" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_bench_quick_no_write(capsys):
    rc = main(["bench", "--quick", "--no-write", "--kernel", "coal_bott"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "coal_bott" in out and "median" in out
    assert "wrote" not in out


def test_bench_gate_against_committed_baseline(capsys, tmp_path):
    rc = main(
        [
            "bench",
            "--quick",
            "--no-write",
            "--kernel",
            "coal_bott",
            "--gate",
            "--baseline",
            "BENCH_seed.json",
            "--threshold",
            "1000",  # contract smoke test, not a timing assertion
        ]
    )
    assert rc == 0
    assert "gating against" in capsys.readouterr().out
