#!/usr/bin/env python
"""Ensemble quickstart: N perturbed scenarios in one fused sweep.

Builds a 4-member ensemble — same CONUS-12km case, each member
perturbed through its namelist (warm-bubble strength, RNG seed) — and
steps all members together through the member-batched superblock
engine: one `(N, ni, nk, nj, nscalar)` resident block per rank, one
transport stencil invocation, one microphysics gather, shared lookup
tables. Then re-runs member 0 solo and verifies the batched result is
bit-identical, which is the engine's contract (`np.array_equal`, not
`allclose`).

Run:  python examples/ensemble.py
"""

import time

import numpy as np

from repro.wrf.ensemble import EnsembleModel
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist, member_namelist

SCALE = 0.05  # fraction of the full 425 x 300 horizontal extents
STEPS = 3
MEMBERS = 4

# Per-member namelist perturbations: member 0 is the control.
DELTAS = (
    (),
    (("bubble_dtheta", 3.25), ("seed_offset", 1)),
    (("bubble_dtheta", 3.50), ("seed_offset", 2)),
    (("bubble_dtheta", 3.75), ("seed_offset", 3)),
)


def main() -> None:
    nl = conus12km_namelist(
        scale=SCALE, num_ranks=1, members=MEMBERS, member_deltas=DELTAS
    )
    print(
        f"CONUS-12km (scaled): {nl.domain.nx} x {nl.domain.ny} x "
        f"{nl.domain.nz} grid, {MEMBERS} ensemble members"
    )

    print(f"\nStepping all {MEMBERS} members batched ...")
    ens = EnsembleModel(nl)
    t0 = time.perf_counter()
    results = ens.run(num_steps=STEPS, final_history=True)
    batched_s = time.perf_counter() - t0
    frames = [ens.gather_output(m) for m in range(MEMBERS)]
    ens.close()
    print(f"  wall-clock: {batched_s * 1e3:8.1f} ms "
          f"({batched_s / MEMBERS * 1e3:.1f} ms/member)")
    for m, res in enumerate(results):
        rain = float(frames[m]["RAINNC"].sum())
        print(f"  member {m}: simulated elapsed {res.elapsed * 1e3:8.2f} ms, "
              f"total RAINNC {rain:10.4f}")

    print("\nRe-running member 0 solo for the bit-identity check ...")
    solo = WrfModel(member_namelist(nl, 0))
    t0 = time.perf_counter()
    solo_res = solo.run(num_steps=STEPS, final_history=True)
    solo_s = time.perf_counter() - t0
    solo_frame = solo.gather_output()
    solo.close()
    print(f"  wall-clock: {solo_s * 1e3:8.1f} ms (one member)")

    exact = all(
        np.array_equal(frames[0][name], solo_frame[name])
        for name in solo_frame
    ) and solo_res.elapsed == results[0].elapsed
    print(f"  member 0 fields + clocks bit-identical to solo: {exact}")
    if not exact:
        raise SystemExit("ensemble engine violated its exactness contract")

    print(
        "\nThe member axis amortizes Python dispatch, packing, and table\n"
        "lookups; the per-member arithmetic (including per-member BLAS\n"
        "calls, which exact equality requires) is unchanged. See\n"
        "`repro bench --members 4` for the tracked measurement."
    )


if __name__ == "__main__":
    main()
