#!/usr/bin/env python
"""Why port a bin scheme to the GPU at all? Bulk vs bin, measured.

The paper's Fig. 2 contrasts bulk microphysics (an assumed analytic
size distribution, a few moments) with bin schemes like FSBM (explicit
equations per size bin). This example runs both on the same
thermodynamic column and measures the cost gap — then shows the O(b^2)
growth that makes refined bin grids (the paper's "few hundreds of bins"
aspiration) hopeless without an accelerator.

Run:  python examples/bulk_vs_bin.py
"""

import time

import numpy as np

from repro.fsbm.bulk import BulkMicrophysics, BulkState, bulk_vs_bin_cost_ratio
from repro.fsbm.coal_bott import coal_bott_step, predict_coal_work
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.species import INTERACTIONS, Species
from repro.fsbm.thermo import saturation_mixing_ratio


def main() -> None:
    shape = (10, 16, 10)
    ncells = int(np.prod(shape))
    nk = shape[1]
    temperature = np.broadcast_to(
        np.linspace(300.0, 235.0, nk)[None, :, None], shape
    ).copy()
    pressure = np.broadcast_to(
        np.linspace(950.0, 350.0, nk)[None, :, None], shape
    ).copy()
    qv = 1.05 * saturation_mixing_ratio(temperature, pressure)
    rho = np.full(shape, 1.0e-3)

    # --- bulk -----------------------------------------------------------
    bulk_state = BulkState(shape=shape)
    bulk_state.qc[...] = 1.5e-3
    bulk = BulkMicrophysics(dt=5.0)
    start = time.perf_counter()
    for _ in range(10):
        bulk.step(bulk_state, temperature.copy(), pressure, qv.copy(), rho, 50_000.0)
    bulk_ms = (time.perf_counter() - start) / 10 * 1e3

    # --- bin (the collision step alone) -----------------------------------
    rng = np.random.default_rng(0)
    dists = {sp: np.zeros((ncells, 33)) for sp in Species}
    dists[Species.LIQUID][:, 5:18] = rng.uniform(0, 5, (ncells, 13))
    dists[Species.SNOW][:, 8:16] = rng.uniform(0, 1, (ncells, 8))
    tables = get_tables()
    t_flat, p_flat = temperature.reshape(-1), pressure.reshape(-1)
    start = time.perf_counter()
    for _ in range(5):
        working = {sp: d.copy() for sp, d in dists.items()}
        coal_bott_step(working, t_flat, p_flat, 5.0, tables, INTERACTIONS, on_demand=True)
    bin_ms = (time.perf_counter() - start) / 5 * 1e3

    print(f"{ncells} grid cells, one microphysics step (this machine):")
    print(f"  bulk (Thompson-like, 2-moment): {bulk_ms:8.2f} ms")
    print(f"  bin  (FSBM collision step):     {bin_ms:8.2f} ms")
    print(f"  measured gap:                   {bin_ms / bulk_ms:8.0f}x")
    print(f"  analytic scalar-code gap:       {bulk_vs_bin_cost_ratio():8.0f}x")

    print("\nAnd the bin count the paper wants to refine toward (O(b^2)):")
    work33 = predict_coal_work(
        dists, t_flat, tables, INTERACTIONS, None, on_demand=True
    )
    print(f"{'bins':>6} {'pair entries / step':>20} {'vs 33 bins':>11}")
    for b in (33, 66, 132, 264):
        scale = (b / 33) ** 2
        print(f"{b:>6} {work33.pair_entries * scale:>20.2e} {scale:>10.1f}x")
    print(
        "\nQuadrupling work per bin doubling is why the paper calls the "
        "collision loops\n'an attractive portion of the code to port to GPUs'."
    )


if __name__ == "__main__":
    main()
