#!/usr/bin/env python
"""The paper's profiling workflow: gprof -> NVTX/Nsight -> ncu -> roofline.

Runs the baseline to find the hotspot (Table I), then profiles the two
offloaded collision kernels with the Nsight-Compute-style collector
(Table VI) and places them on the A100 roofline (Fig. 3).

Run:  python examples/profiling_workflow.py
"""

from repro.experiments.common import BenchConfig
from repro.experiments.table6 import collect_kernel_metrics
from repro.hardware.roofline import RooflineModel
from repro.hardware.specs import A100_40GB
from repro.optim.stages import Stage
from repro.profiling.gprof import TABLE1_ROUTINES, GprofReport
from repro.profiling.nsight_compute import format_table6
from repro.profiling.nsight_systems import NsysReport
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def main() -> None:
    cfg = BenchConfig(scale=0.1, num_ranks=4, num_steps=3)

    print("Step 1 — gprof over all ranks (cheap, imbalance-blind):\n")
    model = WrfModel(conus12km_namelist(scale=cfg.scale, num_ranks=cfg.num_ranks))
    result = model.run(num_steps=cfg.num_steps)
    gprof = GprofReport.from_run(result, TABLE1_ROUTINES)
    print(gprof.format_table())

    print("\nStep 2 — NVTX ranges on one loaded task (Nsight Systems):\n")
    nsys = NsysReport.from_run(result)
    print(nsys.format_table())
    print(
        f"\n  note the imbalance: fast_sbm is {nsys.percent_of('fast_sbm'):.0f}% "
        f"of rank {nsys.rank} but {gprof.percent_of('fast_sbm'):.0f}% in the "
        "aggregate — exactly the Table I gprof/Nsight spread."
    )

    print("\nStep 3 — ncu on the offloaded collision kernel (Table VI):\n")
    c2 = collect_kernel_metrics(Stage.OFFLOAD_COLLAPSE2, cfg)
    c3 = collect_kernel_metrics(Stage.OFFLOAD_COLLAPSE3, cfg)
    print(format_table6(c2, c3))

    print("\nStep 4 — roofline placement (Fig. 3):\n")
    roofline = RooflineModel(gpu=A100_40GB)
    points = [c2.roofline_point("collapse(2)"), c3.roofline_point("collapse(3)")]
    print(roofline.render_ascii(points))


if __name__ == "__main__":
    main()
