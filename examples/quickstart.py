#!/usr/bin/env python
"""Quickstart: run the CONUS-12km thunderstorm case, CPU vs GPU.

Builds a reduced CONUS-12km case, runs the unmodified FSBM baseline and
the final offloaded code version on the simulated Perlmutter node, and
prints the per-step timings and the whole-program speedup — the
headline 2.08x result of the paper, at quickstart scale.

Run:  python examples/quickstart.py
"""

from repro.core.env import PAPER_ENV
from repro.optim.pipeline import run_stage, timings_from_result
from repro.optim.stages import Stage
from repro.wrf.namelist import conus12km_namelist

SCALE = 0.1  # fraction of the full 425 x 300 horizontal extents
RANKS = 4
STEPS = 4


def main() -> None:
    namelist = conus12km_namelist(
        scale=SCALE, num_ranks=RANKS, env=PAPER_ENV
    )
    print(
        f"CONUS-12km (scaled): {namelist.domain.nx} x {namelist.domain.ny} "
        f"x {namelist.domain.nz} grid, {RANKS} MPI ranks, dt = {namelist.dt} s"
    )

    print("\nRunning the CPU baseline (kernals_ks precompute) ...")
    baseline_result, baseline = run_stage(namelist, Stage.BASELINE, STEPS)
    print(f"  per-step elapsed (simulated): {baseline.overall * 1e3:8.2f} ms")
    print(f"  fast_sbm per step:            {baseline.fast_sbm * 1e3:8.2f} ms")

    print("\nRunning the final GPU version (collapse(3), temp_arrays) ...")
    gpu_result, gpu = run_stage(namelist, Stage.OFFLOAD_COLLAPSE3, STEPS)
    print(f"  per-step elapsed (simulated): {gpu.overall * 1e3:8.2f} ms")
    print(f"  fast_sbm per step:            {gpu.fast_sbm * 1e3:8.2f} ms")

    print("\nSpeedups (paper, Table VII @ 16 ranks: 2.08x overall):")
    print(f"  whole program: {baseline.overall / gpu.overall:5.2f}x")
    print(f"  fast_sbm:      {baseline.fast_sbm / gpu.fast_sbm:5.2f}x")
    print(
        f"  collision loop: {baseline.coal_loop / max(gpu.coal_loop, 1e-12):5.1f}x"
    )

    # The physics is real: show the storm did something.
    from repro.wrf.model import WrfModel

    model = WrfModel(namelist.with_stage(Stage.BASELINE))
    model.run(num_steps=STEPS)
    out = model.gather_output()
    print("\nModel state after the run:")
    print(f"  max updraft:            {out['W'].max():6.2f} m/s")
    print(f"  total condensate mass:  {out['QCLOUD_TOTAL'].sum():.3e} g/cm^3")
    print(f"  surface precip columns: {(out['RAINNC'] > 0).sum()}")


if __name__ == "__main__":
    main()
