#!/usr/bin/env python
"""The paper's optimization journey, failure included (Sec. VI).

Walks the four code versions in order, narrating what changed, showing
the speedup tables the paper reports after each step — and reproducing
the CUDA stack overflow the authors hit when they first tried
``collapse(3)`` with the automatic arrays still in place, plus both
remedies.

Run:  python examples/optimization_journey.py
"""

import dataclasses

from repro.core.clock import SimClock
from repro.core.device import Device
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV, OffloadEnv
from repro.core.kernel import Kernel, KernelResources, estimate_registers
from repro.errors import CudaStackOverflow
from repro.fsbm.temp_arrays import automatic_frame_bytes
from repro.optim.pipeline import run_optimization_sequence
from repro.optim.speedup import format_speedup_table
from repro.wrf.namelist import conus12km_namelist

SCALE = 0.1
RANKS = 4
STEPS = 4


def demonstrate_stack_overflow() -> None:
    """Stage 2 -> 3 transition: the launch failure and the fixes."""
    frame = automatic_frame_bytes()
    kernel = Kernel(
        name="coal_bott_new_loop",
        loop_extents=(75, 50, 107),
        resources=KernelResources(
            registers_per_thread=estimate_registers(30, 30),
            automatic_array_bytes=frame,
            working_set_per_thread=float(frame),
            flops=1e8,
            traffic=(),
            active_iterations=100_000,
        ),
    )
    print(f"coal_bott_new's automatic arrays: {frame} bytes per call frame")

    print("\nAttempting collapse(3) with automatic arrays, default env ...")
    engine = OffloadEngine(device=Device(), env=OffloadEnv(), clock=SimClock())
    try:
        engine.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))
    except CudaStackOverflow as exc:
        print(f"  FAILED: {type(exc).__name__}")
        print(f"  {str(exc)[:180]} ...")
    finally:
        engine.close()

    print("\nRemedy 1: NV_ACC_CUDA_STACKSIZE=65536 (Table II) ...")
    engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
    engine.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))
    engine.close()
    print("  launch succeeds (but the big stack reserves GBs per rank).")

    print("\nRemedy 2: replace automatic arrays with temp_arrays pointers ...")
    engine = OffloadEngine(device=Device(), env=OffloadEnv(), clock=SimClock())
    engine.launch(
        kernel.with_resources(
            automatic_array_bytes=0,
            registers_per_thread=estimate_registers(20, 30, pointer_based=True),
        ),
        TargetTeamsDistributeParallelDo(collapse=3),
    )
    engine.close()
    print("  launch succeeds at every stack setting — and with far fewer")
    print("  registers per thread, occupancy jumps (Table VI).")


def main() -> None:
    print("=" * 70)
    print("Step 0: profile; fast_sbm dominates (Table I). Target: collisions.")
    print("=" * 70)

    namelist = conus12km_namelist(scale=SCALE, num_ranks=RANKS)
    sequence = run_optimization_sequence(namelist, num_steps=STEPS)

    print("\nStage 1 — delete kernals_ks, compute entries on demand")
    print(format_speedup_table(sequence.table3(), "Table III reproduction:"))

    print("\nStage 2 — fission the collision loop, offload with collapse(2)")
    print(format_speedup_table(sequence.table4(), "Table IV reproduction:"))

    print("\n" + "=" * 70)
    print("Interlude: why not collapse(3) right away? (Sec. VI-B/C)")
    print("=" * 70)
    demonstrate_stack_overflow()

    print("\nStage 3 — temp_arrays pointers enable the full collapse(3)")
    print(format_speedup_table(sequence.table5(), "Table V reproduction:"))

    print("\nPaper's cumulative overall speedup: 2.20x; see above for ours.")


if __name__ == "__main__":
    main()
