#!/usr/bin/env python
"""The Codee workflow of Listing 2, end to end.

1. Load the ``bear``-captured compilation database,
2. ``screening`` the WRF sources,
3. ``checks`` on the microphysics module,
4. dependence analysis of the ``kernals_ks`` loops (the step that told
   the paper's authors the 20 collision arrays carry no state), and
5. ``rewrite --offload omp`` producing Listing 4's directives.

Run:  python examples/codee_workflow.py
"""

import json
import tempfile
from pathlib import Path

from repro.codee import sources
from repro.codee.checks import format_checks_report, run_checks
from repro.codee.compile_commands import fortran_units, load_compile_commands
from repro.codee.dependence import analyze_loop
from repro.codee.fparser import parse_source
from repro.codee.rewrite import offload_rewrite
from repro.codee.screening import screening_report

WRF_SOURCES = {
    "phys/module_mp_fast_sbm.f90": sources.KERNALS_KS_SOURCE,
    "phys/fast_sbm_driver.f90": sources.MAIN_LOOP_SOURCE,
    "phys/coal_bott_new.f90": sources.COAL_BOTT_ORIGINAL_SOURCE,
    "phys/onecond.f90": sources.legacy_onecond_source(),
}


def main() -> None:
    # --- bear capture -> compile_commands.json -----------------------------
    db = [
        {
            "file": path,
            "directory": "/build/WRF",
            "arguments": ["ftn", "-O2", "-mp=gpu", "-c", path],
        }
        for path in WRF_SOURCES
    ]
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "compile_commands.json"
        db_path.write_text(json.dumps(db))
        commands = load_compile_commands(db_path)
    units = fortran_units(commands)
    print(f"compilation database: {len(units)} Fortran units captured by bear\n")

    # --- codee screening ----------------------------------------------------
    report = screening_report(WRF_SOURCES)
    print(report.format_table())

    # --- codee checks on the microphysics module ----------------------------
    print("\n--- codee checks phys/onecond.f90 ---")
    sf = parse_source(WRF_SOURCES["phys/onecond.f90"], "phys/onecond.f90")
    print(format_checks_report(run_checks(sf)))

    # --- dependence analysis of kernals_ks ----------------------------------
    print("\n--- dependence analysis: kernals_ks ---")
    sf = parse_source(
        WRF_SOURCES["phys/module_mp_fast_sbm.f90"], "phys/module_mp_fast_sbm.f90"
    )
    module = sf.modules[0]
    routine = module.routine("kernals_ks")
    loop = routine.loops()[0]
    dep = analyze_loop(loop, routine, module)
    print(f"loop nest over ({', '.join(loop.nest_vars())}):")
    print(f"  parallelizable:      {dep.parallelizable}")
    print(f"  private scalars:     {', '.join(dep.private_scalars)}")
    print(f"  fully overwritten:   {', '.join(dep.globals_overwritten)}")
    print("  -> the collision arrays carry no state between grid points;")
    print("     they can be computed on demand (the paper's stage 1).")

    # --- codee rewrite --offload omp (Listing 4) -----------------------------
    print("\n--- codee rewrite --offload omp --in-place ---")
    result = offload_rewrite(
        WRF_SOURCES["phys/module_mp_fast_sbm.f90"],
        line=loop.line,
        path="phys/module_mp_fast_sbm.f90",
    )
    lines = result.source.splitlines()
    lo = result.loop_line - 1
    print("\n".join(lines[lo : lo + 14]))
    print("  ...")


if __name__ == "__main__":
    main()
