#!/usr/bin/env python
"""Multiple MPI ranks per GPU: the Sec. VII-A / Fig. 4 study.

Projects the full-size CONUS-12km run (the real 425 x 300 x 50 extents)
across the paper's configurations: 16 GPUs with 16/32/64 ranks, then
the equal-resource 2-node face-off, and finally pushes past the
5-ranks-per-GPU device-memory limit to show the failure mode.

Run:  python examples/multi_gpu_scaling.py
"""

from repro.optim.projection import WorkRates, project_run
from repro.optim.stages import Stage
from repro.wrf.namelist import conus12km_namelist


def main() -> None:
    print("Measuring work rates from a live reduced run ...")
    rates = WorkRates.measure(scale=0.1, num_ranks=4, num_steps=4)
    print(
        f"  {rates.pair_entries_per_coal_cell:.0f} pair entries per active "
        f"cell, activity growth {rates.coal_growth:.2f}x\n"
    )

    print("Fig. 4 sweep — 16 GPUs fixed, CPU ranks growing:")
    print(f"{'config':<22} {'baseline':>10} {'lookup':>10} {'GPU c3':>10}")
    for ranks in (16, 32, 64):
        row = []
        for stage, gpus in (
            (Stage.BASELINE, 0),
            (Stage.LOOKUP, 0),
            (Stage.OFFLOAD_COLLAPSE3, 16),
        ):
            nl = conus12km_namelist(num_ranks=ranks, stage=stage, num_gpus=gpus)
            row.append(project_run(nl, rates).total_seconds)
        print(
            f"{ranks:>3} ranks / 16 GPUs    "
            f"{row[0]:>9.1f}s {row[1]:>9.1f}s {row[2]:>9.1f}s"
        )

    print("\nEqual resources — 2 CPU nodes vs 2 GPU nodes:")
    cpu = project_run(
        conus12km_namelist(num_ranks=256, stage=Stage.BASELINE), rates
    )
    gpu = project_run(
        conus12km_namelist(
            num_ranks=40, stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=8
        ),
        rates,
    )
    print(f"  CPU, 256 ranks:        {cpu.total_seconds:8.1f}s")
    print(f"  GPU, 40 ranks/8 GPUs:  {gpu.total_seconds:8.1f}s")
    print(
        f"  speedup: {cpu.total_seconds / gpu.total_seconds:.2f}x "
        "(paper: 0.956x — near parity; the GPU advantage is gone)"
    )

    print("\nWhy only 40 ranks? Push to 6 ranks/GPU:")
    too_many = project_run(
        conus12km_namelist(
            num_ranks=48, stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=8
        ),
        rates,
    )
    assert too_many.failed
    print(f"  48 ranks / 8 GPUs -> {too_many.error[:120]} ...")
    print(
        "  (the 64 KiB thread stacks plus each rank's temp_arrays exhaust "
        "the 40 GB A100 — the paper's observed 5-rank limit)"
    )


if __name__ == "__main__":
    main()
