#!/usr/bin/env python3
"""CI perf-regression gate over the repo's wall-clock hot kernels.

Runs the benchmark harness (``benchmarks/harness.py``) and compares the
tracked kernel medians against the committed ``BENCH_*.json`` baseline
(the newest non-seed file, falling back to ``BENCH_seed.json``).

Tracked kernels (``harness.TRACKED_KERNELS``): ``coal_bott``,
``model_step_r1``, ``model_step_r4``, ``model_step_multirank`` (the
multiprocess rank engine at a fixed 2-worker workload),
``model_step_members4`` (the member-batched ensemble engine stepping 4
perturbed scenarios in one fused sweep, with interleaved sequential
solo runs for the ``speedup_vs_solo`` extra), ``transport_fused``,
``transport_members4``, ``sedimentation``, ``cond_remap``, and
``coal_apply_batched``. Gate one in isolation with e.g.
``--kernel model_step_multirank``. ``--members N`` (repeatable) adds
informational ensemble sweep entries (``model_step_membersN``) beyond
the tracked 4-member point — sweep entries ride along in the payload
but only baseline-shared kernels gate.

Exit codes (the ``codee verify`` contract):

* 0 — no tracked kernel slower than baseline by more than the threshold
* 1 — gate could not run (no baseline, bad arguments)
* 2 — at least one tracked kernel regressed

Usage::

    python scripts/bench_gate.py --quick            # fast CI smoke gate
    python scripts/bench_gate.py                    # full workloads
    python scripts/bench_gate.py --current out.json # gate a saved payload
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from benchmarks import harness  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workloads")
    parser.add_argument(
        "--threshold",
        type=float,
        default=harness.DEFAULT_THRESHOLD,
        help="relative slowdown that fails the gate (default 0.15)",
    )
    parser.add_argument(
        "--baseline", type=Path, help="explicit baseline JSON (default: committed)"
    )
    parser.add_argument(
        "--current",
        type=Path,
        help="gate a previously collected payload instead of re-running",
    )
    parser.add_argument(
        "--kernel",
        action="append",
        help="collect/gate only this kernel (repeatable); tracked "
        "kernels absent from the collection are simply not gated",
    )
    parser.add_argument(
        "--members",
        action="append",
        type=int,
        help="also run the member-batched ensemble bench at this member "
        "count (repeatable); sweep entries are informational unless the "
        "baseline tracks them",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or harness.find_baseline()
    if baseline_path is None or not Path(baseline_path).exists():
        print("bench_gate: no BENCH_*.json baseline to compare against")
        return 1
    baseline = harness.load_payload(baseline_path)

    if args.current is not None:
        if not args.current.exists():
            print(f"bench_gate: no such payload {args.current}")
            return 1
        current = harness.load_payload(args.current)
    else:
        current = harness.collect(
            quick=args.quick,
            kernels=args.kernel or None,
            members=args.members or None,
        )

    print(f"baseline: {baseline_path} (rev {baseline.get('revision')})")
    print(f"current : rev {current.get('revision')}")
    findings = harness.compare_payloads(current, baseline, threshold=args.threshold)
    if not findings:
        print("bench_gate: no tracked kernels shared with the baseline")
        return 1
    for f in findings:
        print(f.render(args.threshold))
    code = harness.gate_exit_code(findings)
    print("bench_gate:", "OK" if code == 0 else "REGRESSION")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
