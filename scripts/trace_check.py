#!/usr/bin/env python3
"""Structural validator for exported Chrome/Perfetto traces.

Checks that a ``trace.json`` written by :mod:`repro.obs.export` (the
``repro trace`` CLI, ``repro bench --trace``) is something Perfetto
will actually load and that its event stream is internally consistent:

* the file parses and has a ``traceEvents`` list;
* every ``B`` (begin) has a matching ``E`` (end) on the same
  ``(pid, tid)`` track, closed in LIFO order with matching names —
  i.e. spans nest properly and none are left open;
* timestamps are monotonically non-decreasing per ``(pid, tid)`` track
  (the exporter emits a globally time-sorted stream, so out-of-order
  events mean a merge bug);
* every event's ``pid`` is declared by a ``process_name`` metadata
  record (rank timelines the UI would otherwise show as bare numbers);
* counter (``C``) events carry numeric series values;
* ensemble attrs are well-formed: a span's ``member`` arg (which
  member a per-member span belongs to, e.g. ``history_io``) must be a
  non-negative integer, and ``members`` (how many members a batched
  span covered, e.g. ``solve_em``/``physics``/``transport``) must be a
  positive integer.

Exit codes (the ``bench_gate``/``codee verify`` contract):

* 0 — trace is structurally valid
* 1 — could not check (missing file, unparseable JSON, bad arguments)
* 2 — structural violations found (each printed)

Usage::

    python -m repro trace examples/trace_smoke.json -o trace.json
    python scripts/trace_check.py trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def validate_events(events: list[dict]) -> list[str]:
    """Every structural violation in a ``traceEvents`` list."""
    errors: list[str] = []
    declared_pids: set[int] = set()
    used_pids: set[int] = set()
    stacks: dict[tuple[int, int], list[dict]] = {}
    last_ts: dict[tuple[int, int], float] = {}

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph is None or "pid" not in e:
            errors.append(f"event {i}: missing ph/pid: {e}")
            continue
        pid = e["pid"]
        if ph == "M":
            if e.get("name") == "process_name":
                declared_pids.add(pid)
            continue
        used_pids.add(pid)
        key = (pid, e.get("tid", 0))
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if ts < last_ts.get(key, float("-inf")):
            errors.append(
                f"event {i}: ts {ts} goes backwards on track {key} "
                f"(previous {last_ts[key]})"
            )
        last_ts[key] = ts
        if ph == "B":
            args_ = e.get("args", {})
            member = args_.get("member")
            if member is not None and not (
                isinstance(member, int)
                and not isinstance(member, bool)
                and member >= 0
            ):
                errors.append(
                    f"event {i}: span {e.get('name')!r} has non-integer "
                    f"or negative member attr {member!r}"
                )
            members = args_.get("members")
            if members is not None and not (
                isinstance(members, int)
                and not isinstance(members, bool)
                and members >= 1
            ):
                errors.append(
                    f"event {i}: span {e.get('name')!r} has invalid "
                    f"members attr {members!r} (want int >= 1)"
                )
            stacks.setdefault(key, []).append(e)
        elif ph == "E":
            stack = stacks.get(key, [])
            if not stack:
                errors.append(
                    f"event {i}: E {e.get('name')!r} on track {key} "
                    "without an open B"
                )
            else:
                b = stack.pop()
                if b.get("name") != e.get("name"):
                    errors.append(
                        f"event {i}: E {e.get('name')!r} closes "
                        f"B {b.get('name')!r} on track {key} "
                        "(spans must close LIFO)"
                    )
        elif ph == "C":
            args_ = e.get("args", {})
            if not args_ or not all(
                isinstance(v, (int, float)) for v in args_.values()
            ):
                errors.append(
                    f"event {i}: counter {e.get('name')!r} has "
                    f"non-numeric series {args_!r}"
                )
        elif ph not in ("i", "I"):
            errors.append(f"event {i}: unknown phase {ph!r}")

    for key, stack in stacks.items():
        for b in stack:
            errors.append(
                f"track {key}: B {b.get('name')!r} at ts {b.get('ts')} "
                "never closed"
            )
    for pid in sorted(used_pids - declared_pids):
        errors.append(f"pid {pid} has events but no process_name metadata")
    return errors


def check_file(
    path: Path, min_ranks: int = 0, min_members: int = 0
) -> tuple[int, list[str]]:
    """Validate one trace file; returns ``(exit_code, messages)``."""
    if not path.exists():
        return 1, [f"no such file: {path}"]
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return 1, [f"unreadable trace {path}: {exc}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return 1, [f"{path}: no traceEvents list"]

    errors = validate_events(events)

    # Rank timelines = declared non-driver pids that carry span events.
    span_pids = {e["pid"] for e in events if e.get("ph") in ("B", "E")}
    rank_pids = sorted(p for p in span_pids if p < 9000)
    if min_ranks and len(rank_pids) < min_ranks:
        errors.append(
            f"expected >= {min_ranks} rank timelines, found "
            f"{len(rank_pids)} ({rank_pids})"
        )

    # Ensemble coverage: distinct per-member span ids seen in the trace.
    member_ids = sorted(
        {
            e["args"]["member"]
            for e in events
            if e.get("ph") == "B"
            and isinstance(e.get("args", {}).get("member"), int)
            and not isinstance(e.get("args", {}).get("member"), bool)
        }
    )
    if min_members and len(member_ids) < min_members:
        errors.append(
            f"expected per-member spans from >= {min_members} members, "
            f"found {len(member_ids)} ({member_ids})"
        )
    if errors:
        return 2, errors
    nspans = sum(1 for e in events if e.get("ph") == "B")
    member_note = (
        f", member spans from {member_ids}" if member_ids else ""
    )
    return 0, [
        f"{path}: OK — {nspans} spans, {len(rank_pids)} rank timelines "
        f"{rank_pids}, pids all declared, B/E balanced, ts monotonic"
        f"{member_note}"
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace.json to validate")
    parser.add_argument(
        "--min-ranks",
        type=int,
        default=0,
        help="fail unless at least this many rank timelines carry spans",
    )
    parser.add_argument(
        "--min-members",
        type=int,
        default=0,
        help=(
            "fail unless per-member spans (a ``member`` arg) from at "
            "least this many distinct ensemble members appear"
        ),
    )
    args = parser.parse_args(argv)
    code, messages = check_file(
        args.trace, min_ranks=args.min_ranks, min_members=args.min_members
    )
    for m in messages:
        print(m)
    print("trace_check:", {0: "OK", 1: "SKIP", 2: "INVALID"}[code])
    return code


if __name__ == "__main__":
    raise SystemExit(main())
