"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs fail; ``pip install -e . --no-use-pep517``
(or plain ``pip install -e .`` with modern setuptools) uses this shim.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
